//! The seven conformance oracles.
//!
//! Each oracle takes a generated [`Case`] and returns `Err(description)` on
//! a conformance violation. Panics are *not* caught here — the runner wraps
//! every oracle in `catch_unwind` so a panic anywhere in the stack is itself
//! reported as a violation (the whole point of the hardening sweep is that
//! adversarial input produces typed errors, never aborts).

use baselines::{Codec as BaselineCodec, CompressedBuf};
use ceresz_core::archive::Archive;
use ceresz_core::{verify_error_bound, Codec, Compressed, Parallelism};
use ceresz_wse::{execute, mapping_manifest, SimOptions, WseError};
use wse_sim::SimError;

use crate::generate::Case;
use crate::mutate::{self, Mutation};
use crate::rng::Rng;

/// Oracle 1 — differential: the host reference `compress`, its parallel
/// variant, and all three simulated mapping strategies must agree exactly:
/// bit-identical streams on success, the *same* typed
/// [`CompressError`](ceresz_core::CompressError) on failure. Returns the
/// host stream (None when the case errored everywhere
/// in agreement) for the downstream oracles to reuse.
pub fn oracle_differential(case: &Case) -> Result<Option<Compressed>, String> {
    let cfg = case.config();
    let host = Codec::new(cfg.with_parallelism(Parallelism::Serial)).compress(&case.data);
    match Codec::new(cfg.with_parallelism(Parallelism::Rayon)).compress(&case.data) {
        Ok(par) => match &host {
            Ok(h) if par.data == h.data => {}
            Ok(_) => return Err("compress_parallel stream differs from serial compress".into()),
            Err(e) => return Err(format!("compress_parallel Ok but serial compress Err({e})")),
        },
        Err(pe) => match &host {
            Err(e) if *e == pe => {}
            Err(e) => {
                return Err(format!(
                    "error mismatch: serial compress Err({e}) vs compress_parallel Err({pe})"
                ))
            }
            Ok(_) => {
                return Err(format!(
                    "serial compress Ok but compress_parallel Err({pe})"
                ))
            }
        },
    }
    for strategy in case.strategies {
        match (
            execute(strategy, &case.data, &cfg, &SimOptions::default()),
            &host,
        ) {
            (Ok(run), Ok(h)) => {
                if run.compressed.data != h.data {
                    return Err(format!("{strategy:?}: simulated stream differs from host"));
                }
            }
            (Err(WseError::Compress(se)), Err(he)) => {
                if se != *he {
                    return Err(format!(
                        "{strategy:?}: error mismatch: host Err({he}) vs sim Err({se})"
                    ));
                }
            }
            (Err(we), Err(he)) => {
                return Err(format!(
                    "{strategy:?}: host Err({he}) but sim failed with a non-compress error: {we}"
                ))
            }
            (Ok(_), Err(he)) => {
                return Err(format!("{strategy:?}: sim Ok but host Err({he})"));
            }
            (Err(we), Ok(_)) => {
                return Err(format!("{strategy:?}: host Ok but sim Err({we})"));
            }
        }
    }
    Ok(host.ok())
}

/// Oracle 2 — roundtrip: decoding the host stream (serially and in parallel)
/// restores the original length and honors the resolved ε pointwise.
pub fn oracle_roundtrip(case: &Case, host: &Compressed) -> Result<(), String> {
    let serial = Codec::decompressor(Parallelism::Serial)
        .decompress(&host.data)
        .map_err(|e| format!("serial decompress failed: {e}"))?;
    let parallel = Codec::decompressor(Parallelism::Rayon)
        .decompress(&host.data)
        .map_err(|e| format!("parallel decompress failed: {e}"))?;
    if serial
        .iter()
        .map(|v| v.to_bits())
        .ne(parallel.iter().map(|v| v.to_bits()))
    {
        return Err("serial and parallel decompression disagree".into());
    }
    if serial.len() != case.data.len() {
        return Err(format!(
            "length mismatch: {} in, {} out",
            case.data.len(),
            serial.len()
        ));
    }
    if !verify_error_bound(&case.data, &serial, host.stats.eps) {
        let worst = ceresz_core::max_abs_error(&case.data, &serial);
        return Err(format!(
            "error bound violated: max |err| {worst:.6e} vs eps {:.6e}",
            host.stats.eps
        ));
    }
    Ok(())
}

/// Apply both decoders to a mutated stream and check the mutation contract.
fn check_stream_mutation(m: &Mutation) -> Result<(), String> {
    let serial = Codec::decompressor(Parallelism::Serial).decompress(&m.bytes);
    let parallel = Codec::decompressor(Parallelism::Rayon).decompress(&m.bytes);
    if m.must_fail && serial.is_ok() {
        return Err(format!(
            "{}: serial decoder accepted a forged stream",
            m.what
        ));
    }
    if m.must_fail && parallel.is_ok() {
        return Err(format!(
            "{}: parallel decoder accepted a forged stream",
            m.what
        ));
    }
    match (serial, parallel) {
        (Ok(a), Ok(b)) => {
            if a.iter()
                .map(|v| v.to_bits())
                .ne(b.iter().map(|v| v.to_bits()))
            {
                return Err(format!(
                    "{}: serial and parallel decoders decoded different values",
                    m.what
                ));
            }
        }
        (Err(_), Err(_)) => {}
        (Ok(_), Err(e)) => {
            return Err(format!(
                "{}: serial decoder accepted what parallel rejected ({e})",
                m.what
            ))
        }
        (Err(e), Ok(_)) => {
            return Err(format!(
                "{}: parallel decoder accepted what serial rejected ({e})",
                m.what
            ))
        }
    }
    Ok(())
}

/// Apply `Archive::from_bytes` to a mutated archive buffer. The parse may
/// accept payload bit flips (it does not decode field streams), but length
/// forgeries and truncations must be rejected, and nothing may panic.
fn check_archive_mutation(m: &Mutation) -> Result<(), String> {
    match Archive::from_bytes(&m.bytes) {
        Ok(a) => {
            if m.must_fail {
                return Err(format!(
                    "{}: archive parser accepted a forged buffer",
                    m.what
                ));
            }
            // Decoding a corrupted field stream may fail — it must do so
            // with a typed error (a panic would propagate to the runner).
            for f in a.fields() {
                let _ = f.decompress();
            }
            Ok(())
        }
        Err(_) => Ok(()),
    }
}

/// Oracle 3 — mutation: every corruption of a valid stream or archive
/// (random bit flips, all-strict-prefix truncations, targeted length-field
/// forgeries) decodes to a typed error or, where the format genuinely cannot
/// detect the flip, to a value both decoders agree on. Never a panic, and
/// never an allocation sized by a forged length field.
pub fn oracle_mutation(case: &Case, host: &Compressed) -> Result<(), String> {
    let mut r = Rng::new(case.seed).derive(0xC0FFEE);

    for _ in 0..24 {
        if let Some(m) = mutate::flip_random_bit(&mut r, &host.data) {
            check_stream_mutation(&m)?;
        }
    }
    for m in mutate::truncations(&mut r, &host.data, 8) {
        check_stream_mutation(&m)?;
    }
    for m in mutate::stream_header_forgeries(&host.data, case.block_size) {
        check_stream_mutation(&m)?;
    }

    // The same treatment for the archive container wrapping this stream.
    let mut archive = Archive::new();
    archive
        .add_field("field", &[case.data.len()], &case.data, &case.config())
        .map_err(|e| format!("archive add_field failed on compressible data: {e}"))?;
    let bytes = archive.to_bytes();
    for _ in 0..16 {
        if let Some(m) = mutate::flip_random_bit(&mut r, &bytes) {
            check_archive_mutation(&m)?;
        }
    }
    for m in mutate::truncations(&mut r, &bytes, 8) {
        check_archive_mutation(&m)?;
    }
    for m in mutate::archive_forgeries(&bytes) {
        check_archive_mutation(&m)?;
    }
    Ok(())
}

/// Oracle 5 — verifier soundness: the static mapping verifier's clean bill
/// of health must be *sound*. For every strategy shape in the case, build
/// the mapping's static manifest; the verifier must accept it (the
/// strategies ship only mappings they believe in), and a verifier-accepted
/// mapping simulated with verification opted out must never fail with a
/// machine-level routing, deadlock, or memory error — those are exactly the
/// failures the verifier claims to rule out. Algorithm-level `Compress`
/// errors are fine (they are data properties, not mapping properties).
pub fn oracle_verifier(case: &Case) -> Result<(), String> {
    let cfg = case.config();
    for strategy in case.strategies {
        // Construction can reject the case (bad data, invalid shape) before
        // a manifest exists; error agreement is the differential oracle's
        // job, not this one's.
        let Ok(manifest) = mapping_manifest(&case.data, &cfg, strategy) else {
            continue;
        };
        let report = ceresz_wse::verify::verify(&manifest);
        if !report.is_clean() {
            let first = report.errors().next().expect("unclean report has errors");
            return Err(format!(
                "{strategy:?}: verifier rejects the shipped mapping: {first}"
            ));
        }
        let options = SimOptions::default().without_verify();
        if let Err(WseError::Sim(e)) = execute(strategy, &case.data, &cfg, &options) {
            match e {
                SimError::Deadlock { .. }
                | SimError::NoRoute { .. }
                | SimError::RouteMismatch { .. }
                | SimError::MulticastUnsupported { .. }
                | SimError::RouteOffMesh { .. }
                | SimError::RoutingLoop { .. }
                | SimError::OutOfMemory { .. } => {
                    return Err(format!(
                        "{strategy:?}: verifier passed the mapping but simulation failed \
                         with a machine error it should have ruled out: {e}"
                    ));
                }
                // Kernel failures and runaway guards are outside the static
                // contract.
                _ => {}
            }
        }
    }
    Ok(())
}

/// Oracle 6 — static-bound soundness: for every strategy shape in the case,
/// the static performance analyzer's bounds must dominate a flight-recorded
/// run of the same mapping — per-link worst-case load ≥ observed occupancy,
/// critical-path lower bound ≤ simulated makespan, SRAM watermark ≥ observed
/// peak memory — and the channel-dependency check must *prove* every shipped
/// mapping deadlock-free. Cases the mapping builder or simulator rejects are
/// skipped here: error agreement is the differential oracle's job.
pub fn oracle_soundness(case: &Case) -> Result<(), String> {
    let cfg = case.config();
    for strategy in case.strategies {
        let Ok(manifest) = mapping_manifest(&case.data, &cfg, strategy) else {
            continue;
        };
        let profile = ceresz_wse::analyze_mapping(&manifest);
        if !profile.is_deadlock_free() {
            return Err(format!(
                "{strategy:?}: deadlock check failed to prove a shipped mapping free"
            ));
        }
        let options = SimOptions::default().with_flight_window(1024);
        let Ok(run) = execute(strategy, &case.data, &cfg, &options) else {
            continue;
        };
        let mut report = run.report;
        let flight = report
            .take_flight()
            .expect("flight recording was enabled for the soundness run");
        let (rows, cols) = strategy.mesh_shape();
        let peaks = ceresz_wse::mem_peaks(&report, rows, cols);
        let sound = ceresz_wse::check_soundness(&profile, report.stats(), &flight, &peaks);
        if !sound.is_sound() {
            return Err(format!(
                "{strategy:?}: static bounds failed to dominate the observed run: {}",
                sound.violations.join("; ")
            ));
        }
    }
    Ok(())
}

/// Oracle 4 — baselines: every baseline codec either rejects the input with
/// a typed error or honors its own recorded error bound on the roundtrip.
pub fn oracle_baselines(case: &Case) -> Result<(), String> {
    let codecs: [&dyn BaselineCodec; 4] = [
        &baselines::szp::Szp::default(),
        &baselines::cuszp::CuSzp::default(),
        &baselines::sz3::Sz3,
        &baselines::cusz::CuSz,
    ];
    let dims = [case.data.len()];
    for codec in codecs {
        let buf: CompressedBuf = match codec.compress(&case.data, &dims, case.bound) {
            Ok(buf) => buf,
            Err(_) => continue, // A typed rejection satisfies the contract.
        };
        let restored = codec
            .decompress(&buf)
            .map_err(|e| format!("{}: compressed Ok but decompress Err({e})", codec.name()))?;
        if restored.len() != case.data.len() {
            return Err(format!(
                "{}: length mismatch: {} in, {} out",
                codec.name(),
                case.data.len(),
                restored.len()
            ));
        }
        if !verify_error_bound(&case.data, &restored, buf.eps) {
            let worst = ceresz_core::max_abs_error(&case.data, &restored);
            return Err(format!(
                "{}: own error bound violated: max |err| {worst:.6e} vs eps {:.6e}",
                codec.name(),
                buf.eps
            ));
        }
    }
    Ok(())
}

/// Oracle 7 — recipes: compressing under the case's randomly drawn (but
/// well-typed) recipe must behave exactly like the canonical pipeline
/// contract-wise: serial and rayon agree bit-for-bit (streams *and* typed
/// errors), the stream is fully self-describing (a fresh decompressor using
/// only the recorded recipe bytes restores the field — bit-exactly for
/// lossless recipes, within ε otherwise), the archive container records the
/// recipe per field, and corrupting the recipe bytes yields a typed error,
/// never a panic.
pub fn oracle_recipes(case: &Case) -> Result<(), String> {
    let cfg = case.recipe_config();
    let serial = Codec::new(cfg.with_parallelism(Parallelism::Serial)).compress(&case.data);
    let rayon = Codec::new(cfg.with_parallelism(Parallelism::Rayon)).compress(&case.data);
    let c = match (serial, rayon) {
        (Ok(a), Ok(b)) => {
            if a.data != b.data {
                return Err(format!(
                    "recipe {}: serial and rayon streams differ",
                    cfg.recipe
                ));
            }
            a
        }
        (Err(a), Err(b)) => {
            if a != b {
                return Err(format!(
                    "recipe {}: error mismatch: serial Err({a}) vs rayon Err({b})",
                    cfg.recipe
                ));
            }
            return Ok(()); // Typed rejection on both paths is conformant.
        }
        (Ok(_), Err(e)) => {
            return Err(format!(
                "recipe {}: serial Ok but rayon Err({e})",
                cfg.recipe
            ))
        }
        (Err(e), Ok(_)) => {
            return Err(format!(
                "recipe {}: rayon Ok but serial Err({e})",
                cfg.recipe
            ))
        }
    };
    if c.stats.recipe != cfg.recipe {
        return Err(format!(
            "recipe {}: stats recorded a different recipe ({})",
            cfg.recipe, c.stats.recipe
        ));
    }

    // Self-description: a decompressor that knows nothing but the bytes.
    let restored = Codec::decompressor(Parallelism::Serial)
        .decompress(&c.data)
        .map_err(|e| format!("recipe {}: decompress failed: {e}", cfg.recipe))?;
    if restored.len() != case.data.len() {
        return Err(format!(
            "recipe {}: length mismatch: {} in, {} out",
            cfg.recipe,
            case.data.len(),
            restored.len()
        ));
    }
    if cfg.recipe.is_lossless() {
        if restored
            .iter()
            .map(|v| v.to_bits())
            .ne(case.data.iter().map(|v| v.to_bits()))
        {
            return Err(format!(
                "recipe {}: lossless recipe did not restore exact bits",
                cfg.recipe
            ));
        }
    } else if !verify_error_bound(&case.data, &restored, c.stats.eps) {
        let worst = ceresz_core::max_abs_error(&case.data, &restored);
        return Err(format!(
            "recipe {}: error bound violated: max |err| {worst:.6e} vs eps {:.6e}",
            cfg.recipe, c.stats.eps
        ));
    }

    // The archive container must record the recipe per field and roundtrip.
    let mut archive = Archive::new();
    archive
        .add_field("field", &[case.data.len()], &case.data, &cfg)
        .map_err(|e| format!("recipe {}: archive add_field failed: {e}", cfg.recipe))?;
    let archive = Archive::from_bytes(&archive.to_bytes())
        .map_err(|e| format!("recipe {}: archive re-parse failed: {e}", cfg.recipe))?;
    let f = archive
        .field("field")
        .ok_or_else(|| format!("recipe {}: field lost in archive roundtrip", cfg.recipe))?;
    if f.recipe != cfg.recipe {
        return Err(format!(
            "recipe {}: archive recorded recipe {} instead",
            cfg.recipe, f.recipe
        ));
    }
    let from_archive = f.decompress().map_err(|e| {
        format!(
            "recipe {}: archive field decompress failed: {e}",
            cfg.recipe
        )
    })?;
    if from_archive
        .iter()
        .map(|v| v.to_bits())
        .ne(restored.iter().map(|v| v.to_bits()))
    {
        return Err(format!(
            "recipe {}: archive decode differs from direct decode",
            cfg.recipe
        ));
    }

    // Corrupting the recipe bytes of a v2 stream must be a typed rejection.
    if !cfg.recipe.is_canonical() {
        let mut forged = c.data.clone();
        // Stage count byte, then the first stage id.
        for at in [
            ceresz_core::stream::STREAM_HEADER_BYTES,
            ceresz_core::stream::STREAM_HEADER_BYTES + 1,
        ] {
            if at < forged.len() {
                let orig = forged[at];
                forged[at] = 0xFE;
                if Codec::decompressor(Parallelism::Serial)
                    .decompress(&forged)
                    .is_ok()
                {
                    return Err(format!(
                        "recipe {}: decoder accepted forged recipe byte at {at}",
                        cfg.recipe
                    ));
                }
                forged[at] = orig;
            }
        }
    }
    Ok(())
}
