//! # conformance
//!
//! Deterministic, seed-driven differential fuzzing for the CereSZ workspace.
//!
//! One fuzz *case* is a structured adversarial input (see
//! [`generate::DataClass`]) plus a compression configuration and three WSE
//! mapping shapes. Seven oracles judge it:
//!
//! 1. **Differential** — host `compress`, `compress_parallel`, and all three
//!    simulated mapping strategies agree exactly: bit-identical streams on
//!    success, the same typed `CompressError` on failure.
//! 2. **Roundtrip** — decompression (serial and parallel) restores the
//!    original length and honors the resolved ε pointwise.
//! 3. **Mutation** — every corruption of a valid stream/archive (bit flips,
//!    strict-prefix truncations, length-field forgeries) yields a typed
//!    error — never a panic, a silent wrong answer the two decoders disagree
//!    on, or an allocation sized by a forged length field.
//! 4. **Baselines** — every baseline codec rejects bad input with a typed
//!    error or honors its own recorded error bound.
//! 5. **Verifier** — the static mapping verifier is sound: every mapping it
//!    certifies clean runs to completion (with verification opted out) and
//!    never dies with a deadlock, routing, or memory error — the failure
//!    classes the verifier claims to rule out before simulation.
//! 6. **Soundness** — the static performance analyzer's bounds dominate a
//!    flight-recorded run of every shipped mapping: per-link worst-case load
//!    ≥ observed occupancy, critical-path lower bound ≤ simulated makespan,
//!    SRAM watermark ≥ observed peak, deadlock-freedom proven.
//! 7. **Recipes** — under a randomly drawn well-typed stage recipe, serial
//!    and rayon agree bit-for-bit, the stream and archive are fully
//!    self-describing (decode uses only the recorded recipe bytes; lossless
//!    recipes restore exact bits, lossy ones honor ε), and corrupted recipe
//!    bytes are typed rejections.
//!
//! Everything derives from `(seed, case index)` via a built-in xorshift64*
//! generator — no external crates — so a whole run reproduces with
//! `ceresz fuzz --seed <seed> --cases <n>` and a single failing case with
//! `ceresz fuzz --case-seed <its reported seed>`. On failure a greedy
//! shrinker ([`shrink::shrink_data`]) reduces the input before reporting.

#![forbid(unsafe_code)]
pub mod generate;
pub mod mutate;
pub mod oracles;
pub mod rng;
pub mod shrink;

use std::panic::{catch_unwind, AssertUnwindSafe};

pub use generate::{Case, DataClass};

/// Parameters of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Root seed; every case derives its own seed from this and its index.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: u64,
    /// Shrink failing inputs before reporting (costs extra oracle runs).
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            cases: 1000,
            shrink: true,
        }
    }
}

/// One conformance violation.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the case within the run.
    pub case_index: u64,
    /// The case's derived seed; `Case::from_seed` (or
    /// `ceresz fuzz --case-seed`) replays this case in isolation.
    pub case_seed: u64,
    /// Which oracle failed: `differential`, `roundtrip`, `mutation`,
    /// `baselines`, `verifier`, `soundness`, or `recipes`.
    pub oracle: &'static str,
    /// What went wrong.
    pub message: String,
    /// Input length as generated.
    pub data_len: usize,
    /// Shrunk failing input, when shrinking was enabled and reproduced the
    /// failure on a smaller input.
    pub shrunk: Option<Vec<f32>>,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "case {} (seed {:#018x}, {} values) [{}]: {}",
            self.case_index, self.case_seed, self.data_len, self.oracle, self.message
        )?;
        if let Some(s) = &self.shrunk {
            write!(
                f,
                "\n  shrunk to {} values: {:?}",
                s.len(),
                &s[..s.len().min(16)]
            )?;
        }
        Ok(())
    }
}

/// Outcome of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases_run: u64,
    /// Cases whose host compression succeeded (the rest exercised the
    /// error paths — both kinds count as coverage).
    pub compressible_cases: u64,
    /// All conformance violations found.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when every case passed every oracle.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} cases ({} compressible, {} error-path), {} failure(s)",
            self.cases_run,
            self.compressible_cases,
            self.cases_run - self.compressible_cases,
            self.failures.len()
        )?;
        for failure in &self.failures {
            writeln!(f, "  {failure}")?;
        }
        Ok(())
    }
}

/// The boxed hook type `std::panic::take_hook` returns.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// Restores the previous panic hook on drop.
struct PanicHookGuard {
    prev: Option<PanicHook>,
}

impl PanicHookGuard {
    /// Replace the default hook (which prints a backtrace for every caught
    /// probe panic) with a silent one for the duration of the run. The hook
    /// is process-global; concurrent test threads may interleave, which at
    /// worst un-silences another thread's probe.
    fn silence() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        PanicHookGuard { prev: Some(prev) }
    }
}

impl Drop for PanicHookGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// Run `f`, converting a panic into an oracle failure message.
fn probe(f: impl FnOnce() -> Result<(), String>) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(format!("panicked: {}", panic_message(&payload))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// What [`run_case`] observed for one case.
#[derive(Debug, Clone, Default)]
pub struct CaseOutcome {
    /// The host compression path succeeded (error-path cases are coverage
    /// too — the differential oracle checks the errors agree).
    pub compressible: bool,
    /// `(oracle, message)` for every violated oracle.
    pub violations: Vec<(&'static str, String)>,
}

/// Run every oracle against `case`. The differential oracle runs first and
/// its host stream feeds the roundtrip and mutation oracles, mirroring how
/// a real consumer would chain the APIs.
pub fn run_case(case: &Case) -> CaseOutcome {
    let mut out = CaseOutcome::default();
    let mut host = None;
    match catch_unwind(AssertUnwindSafe(|| oracles::oracle_differential(case))) {
        Ok(Ok(h)) => host = h,
        Ok(Err(msg)) => out.violations.push(("differential", msg)),
        Err(payload) => out.violations.push((
            "differential",
            format!("panicked: {}", panic_message(&payload)),
        )),
    }
    if let Some(host) = &host {
        out.compressible = true;
        if let Err(msg) = probe(|| oracles::oracle_roundtrip(case, host)) {
            out.violations.push(("roundtrip", msg));
        }
        if let Err(msg) = probe(|| oracles::oracle_mutation(case, host)) {
            out.violations.push(("mutation", msg));
        }
    }
    if let Err(msg) = probe(|| oracles::oracle_baselines(case)) {
        out.violations.push(("baselines", msg));
    }
    if let Err(msg) = probe(|| oracles::oracle_verifier(case)) {
        out.violations.push(("verifier", msg));
    }
    if let Err(msg) = probe(|| oracles::oracle_soundness(case)) {
        out.violations.push(("soundness", msg));
    }
    if let Err(msg) = probe(|| oracles::oracle_recipes(case)) {
        out.violations.push(("recipes", msg));
    }
    out
}

/// Does `oracle` still fail on `case` with `data` substituted? Used as the
/// shrinker predicate; a panic counts as "still fails".
fn oracle_fails_with(case: &Case, oracle: &'static str, data: &[f32]) -> bool {
    let mut c = case.clone();
    c.data = data.to_vec();
    run_case(&c)
        .violations
        .iter()
        .any(|(name, _)| *name == oracle)
}

/// Execute a full fuzz run.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let _guard = PanicHookGuard::silence();
    let mut report = FuzzReport::default();
    for index in 0..cfg.cases {
        let case = Case::generate(cfg.seed, index);
        report.cases_run += 1;
        let outcome = run_case(&case);
        if outcome.compressible {
            report.compressible_cases += 1;
        }
        for (oracle, message) in outcome.violations {
            let shrunk = if cfg.shrink && !case.data.is_empty() {
                let s =
                    shrink::shrink_data(&case.data, |d| oracle_fails_with(&case, oracle, d), 128);
                (s.len() < case.data.len()).then_some(s)
            } else {
                None
            };
            report.failures.push(FuzzFailure {
                case_index: index,
                case_seed: case.seed,
                oracle,
                message,
                data_len: case.data.len(),
                shrunk,
            });
        }
    }
    report
}
