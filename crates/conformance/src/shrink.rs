//! Greedy input shrinking.
//!
//! Given a failing input and a predicate that re-runs the failing oracle,
//! find a (locally) minimal input that still fails. The strategy is the
//! classic delta-debugging ladder: drop large chunks first, then smaller
//! ones, then simplify surviving values toward zero. Every candidate is a
//! subsequence or simplification of the original, so block-boundary bugs
//! stay reachable.

/// Shrink `data` while `still_fails` keeps returning `true`, spending at
/// most `budget` predicate calls. Returns the smallest failing input found.
pub fn shrink_data(
    data: &[f32],
    mut still_fails: impl FnMut(&[f32]) -> bool,
    budget: usize,
) -> Vec<f32> {
    let mut best = data.to_vec();
    let mut calls = 0usize;
    let mut try_candidate = |cand: &[f32], best: &mut Vec<f32>, calls: &mut usize| -> bool {
        if *calls >= budget {
            return false;
        }
        *calls += 1;
        if still_fails(cand) {
            *best = cand.to_vec();
            true
        } else {
            false
        }
    };

    // Phase 1: remove chunks, halving the chunk size each round.
    let mut chunk = best.len().div_ceil(2).max(1);
    while chunk >= 1 && calls < budget {
        let mut start = 0;
        while start < best.len() && calls < budget {
            let end = (start + chunk).min(best.len());
            let mut cand = Vec::with_capacity(best.len() - (end - start));
            cand.extend_from_slice(&best[..start]);
            cand.extend_from_slice(&best[end..]);
            if !try_candidate(&cand, &mut best, &mut calls) {
                start += chunk;
            }
            // On success `best` shrank in place; retry the same offset.
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }

    // Phase 2: simplify surviving values toward zero (a field of mostly
    // zeros with one interesting value reads far better in a bug report).
    let mut i = 0;
    while i < best.len() && calls < budget {
        if best[i].to_bits() != 0.0f32.to_bits() {
            let mut cand = best.clone();
            cand[i] = 0.0;
            try_candidate(&cand, &mut best, &mut calls);
        }
        i += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_single_trigger() {
        // Failure iff the input contains a NaN.
        let mut data = vec![1.0f32; 200];
        data[137] = f32::NAN;
        let shrunk = shrink_data(&data, |d| d.iter().any(|v| v.is_nan()), 10_000);
        assert_eq!(shrunk.len(), 1);
        assert!(shrunk[0].is_nan());
    }

    #[test]
    fn respects_budget() {
        let data = vec![1.0f32; 1000];
        let mut calls = 0;
        let shrunk = shrink_data(
            &data,
            |_| {
                calls += 1;
                true
            },
            10,
        );
        assert!(calls <= 10);
        assert!(shrunk.len() < data.len());
    }

    #[test]
    fn returns_original_when_nothing_smaller_fails() {
        let data = vec![1.0f32; 8];
        // Fails only at the exact original length.
        let shrunk = shrink_data(&data, |d| d.len() == 8, 1000);
        assert_eq!(shrunk.len(), 8);
    }

    #[test]
    fn zeroes_uninteresting_values() {
        let mut data = vec![3.5f32; 50];
        data[7] = f32::INFINITY;
        let shrunk = shrink_data(&data, |d| d.iter().any(|v| v.is_infinite()), 10_000);
        assert_eq!(shrunk.len(), 1);
        assert!(shrunk[0].is_infinite());
    }
}
