//! Structured adversarial case generation.
//!
//! A [`Case`] is everything one fuzz iteration needs: the input field, the
//! compression configuration, and the WSE mapping shapes to differentially
//! test. Cases are derived purely from `(root seed, case index)` so any
//! failure is reproducible with `ceresz fuzz --seed <root> --cases <i+1>`
//! (or by re-running just that case from its recorded `case_seed`).

use ceresz_core::{CereszConfig, ErrorBound, HeaderWidth, Recipe, StageSpec};
use ceresz_wse::MappingStrategy;

use crate::rng::Rng;

/// Lengths that historically break block codecs: empty, single element,
/// primes, one-off-a-block-boundary, and non-multiples of the block size.
pub const HOSTILE_LENGTHS: &[usize] = &[0, 1, 2, 7, 31, 32, 33, 63, 97, 127, 255, 256, 1009];

/// Longest generated input. Kept small enough that three event-simulator
/// runs per case stay cheap, large enough to span many blocks.
pub const MAX_LEN: usize = 1100;

/// The shape of data a case carries — each class targets a failure mode the
/// compression pipeline has to survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataClass {
    /// Slowly varying sine mixture (the paper's friendly case).
    Smooth,
    /// Every element identical (zero Lorenzo deltas, REL bound resolves to 0).
    Constant,
    /// All zeros (zero-block fast path everywhere).
    AllZero,
    /// Subnormal f32 values (quantization near underflow).
    Denormal,
    /// Magnitudes spanning ~60 decades in one field.
    HugeRange,
    /// Finite base with NaN / ±Inf injected.
    NanInf,
    /// Random walk (small deltas, large absolute values).
    RandomWalk,
    /// Values near `f32::MAX` (quantization overflow territory).
    LargeMagnitude,
    /// Raw random bit patterns (any f32, including NaN payloads).
    RawBits,
}

const ALL_CLASSES: &[DataClass] = &[
    DataClass::Smooth,
    DataClass::Constant,
    DataClass::AllZero,
    DataClass::Denormal,
    DataClass::HugeRange,
    DataClass::NanInf,
    DataClass::RandomWalk,
    DataClass::LargeMagnitude,
    DataClass::RawBits,
];

/// One self-contained fuzz case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Index within the run.
    pub index: u64,
    /// Derived seed — sufficient to regenerate this case alone.
    pub seed: u64,
    /// The input field.
    pub data: Vec<f32>,
    /// What kind of data it is.
    pub class: DataClass,
    /// Error bound under test (~10 % of cases draw an *invalid* bound).
    pub bound: ErrorBound,
    /// Block size (weighted toward the paper's 32).
    pub block_size: usize,
    /// Per-block header width.
    pub header: HeaderWidth,
    /// One shape of each mapping strategy to differentially test.
    pub strategies: [MappingStrategy; 3],
    /// A randomly drawn (always well-typed) stage recipe, exercised by the
    /// recipe oracle. The canonical [`Self::config`] is untouched so the
    /// WSE differential oracle keeps testing the wafer-mappable pipeline.
    pub recipe: Recipe,
}

impl Case {
    /// The compression configuration for this case.
    #[must_use]
    pub fn config(&self) -> CereszConfig {
        CereszConfig::new(self.bound)
            .with_block_size(self.block_size)
            .with_header(self.header)
    }

    /// [`Self::config`] with the case's drawn recipe applied.
    #[must_use]
    pub fn recipe_config(&self) -> CereszConfig {
        self.config().with_recipe(self.recipe)
    }

    /// Generate case `index` of the run seeded with `root_seed`.
    #[must_use]
    pub fn generate(root_seed: u64, index: u64) -> Self {
        let seed = Rng::new(root_seed).derive(index).next_u64();
        Self::from_seed(seed, index)
    }

    /// Rebuild a case from its derived seed alone — this is what
    /// `ceresz fuzz --case-seed <seed>` uses to replay one failure without
    /// re-running the whole campaign it came from.
    #[must_use]
    pub fn from_seed(seed: u64, index: u64) -> Self {
        let mut r = Rng::new(seed);

        let len = if r.chance(0.5) {
            *r.pick(HOSTILE_LENGTHS)
        } else {
            r.below(MAX_LEN)
        };
        let class = *r.pick(ALL_CLASSES);
        let data = gen_data(&mut r, class, len);
        let bound = gen_bound(&mut r);
        let block_size = *r.pick(&[8usize, 16, 32, 32, 32, 64]);
        let header = if r.chance(0.5) {
            HeaderWidth::W1
        } else {
            HeaderWidth::W4
        };
        let recipe = gen_recipe(&mut r);
        let strategies = [
            MappingStrategy::RowParallel {
                rows: 1 + r.below(3),
            },
            MappingStrategy::Pipeline {
                rows: 1 + r.below(3),
                pipeline_length: 1 + r.below(4),
            },
            MappingStrategy::MultiPipeline {
                rows: 1 + r.below(2),
                pipeline_length: 1 + r.below(3),
                pipelines_per_row: 1 + r.below(3),
            },
        ];
        Self {
            index,
            seed,
            data,
            class,
            bound,
            block_size,
            header,
            strategies,
            recipe,
        }
    }
}

/// Draw a valid recipe: every composition here satisfies the plane-kind
/// chain, so `Recipe::new` cannot fail — the fuzzer explores *behavior*
/// under well-typed recipes (ill-typed ones are rejected at construction,
/// pinned by unit tests).
fn gen_recipe(r: &mut Rng) -> Recipe {
    let slates: &[&[StageSpec]] = &[
        &[
            StageSpec::PreQuantize,
            StageSpec::Lorenzo1d,
            StageSpec::FixedLength,
        ],
        &[StageSpec::PreQuantize, StageSpec::FixedLength],
        &[
            StageSpec::PreQuantize,
            StageSpec::Lorenzo1d,
            StageSpec::FixedLength,
            StageSpec::Huffman,
        ],
        &[
            StageSpec::PreQuantize,
            StageSpec::FixedLength,
            StageSpec::Huffman,
        ],
        &[StageSpec::MantissaSplit, StageSpec::Huffman],
        &[StageSpec::Bf16, StageSpec::Huffman],
    ];
    let at = r.below(slates.len());
    Recipe::new(slates[at]).expect("slate recipes are well-typed")
}

fn gen_bound(r: &mut Rng) -> ErrorBound {
    if r.chance(0.10) {
        // Invalid bounds: the whole stack must reject these with a typed
        // error, on every path, including through the simulated fabric.
        *r.pick(&[
            ErrorBound::Abs(0.0),
            ErrorBound::Abs(-1.0),
            ErrorBound::Abs(f64::NAN),
            ErrorBound::Rel(0.0),
            ErrorBound::Rel(-3.0),
            ErrorBound::Rel(f64::INFINITY),
        ])
    } else if r.chance(0.5) {
        ErrorBound::Abs(r.log_uniform(1e-7, 1.0))
    } else {
        ErrorBound::Rel(r.log_uniform(1e-7, 1e-1))
    }
}

fn gen_data(r: &mut Rng, class: DataClass, len: usize) -> Vec<f32> {
    match class {
        DataClass::Smooth => {
            let amp = r.log_uniform(1e-3, 1e3) as f32;
            let f1 = 0.001 + r.unit_f64() as f32 * 0.1;
            let f2 = 0.001 + r.unit_f64() as f32 * 0.02;
            (0..len)
                .map(|i| {
                    let x = i as f32;
                    amp * ((x * f1).sin() + 0.3 * (x * f2).cos())
                })
                .collect()
        }
        DataClass::Constant => {
            let v = pick_scalar(r);
            vec![v; len]
        }
        DataClass::AllZero => vec![0.0; len],
        DataClass::Denormal => (0..len)
            .map(|_| {
                // Bits below 0x0080_0000 are subnormal (or zero); random sign.
                let bits = (r.next_u64() as u32) & 0x007F_FFFF | ((r.next_u64() as u32) << 31);
                f32::from_bits(bits)
            })
            .collect(),
        DataClass::HugeRange => (0..len)
            .map(|_| {
                let mag = r.log_uniform(1e-30, 1e30) as f32;
                if r.chance(0.5) {
                    mag
                } else {
                    -mag
                }
            })
            .collect(),
        DataClass::NanInf => {
            let mut v: Vec<f32> = (0..len).map(|i| (i as f32 * 0.05).sin() * 10.0).collect();
            for x in &mut v {
                if r.chance(0.02) {
                    *x = *r.pick(&[f32::NAN, f32::INFINITY, f32::NEG_INFINITY]);
                }
            }
            if !v.is_empty() {
                let at = r.below(v.len());
                v[at] = f32::NAN; // Guarantee at least one.
            }
            v
        }
        DataClass::RandomWalk => {
            let mut acc = 0.0f32;
            (0..len)
                .map(|_| {
                    acc += (r.unit_f64() as f32 - 0.5) * 2.0;
                    acc
                })
                .collect()
        }
        DataClass::LargeMagnitude => (0..len)
            .map(|_| {
                let v = (r.unit_f64() as f32) * f32::MAX;
                if r.chance(0.5) {
                    v
                } else {
                    -v
                }
            })
            .collect(),
        DataClass::RawBits => (0..len)
            .map(|_| f32::from_bits(r.next_u64() as u32))
            .collect(),
    }
}

/// A scalar drawn from the interesting corners of the f32 range.
fn pick_scalar(r: &mut Rng) -> f32 {
    *r.pick(&[
        0.0,
        -0.0,
        1.0,
        -1.5,
        f32::MIN_POSITIVE,
        f32::MIN_POSITIVE / 4.0, // subnormal
        1e30,
        -1e-30,
        f32::MAX / 2.0,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Case::generate(42, 7);
        let b = Case::generate(42, 7);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.block_size, b.block_size);
        assert_eq!(a.data.len(), b.data.len());
        assert_eq!(
            a.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_indices_differ() {
        let a = Case::generate(42, 0);
        let b = Case::generate(42, 1);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn case_seed_alone_reproduces_the_case() {
        let a = Case::generate(42, 17);
        let b = Case::from_seed(a.seed, a.index);
        assert_eq!(a.block_size, b.block_size);
        assert_eq!(a.class, b.class);
        assert_eq!(
            a.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn strategies_are_always_valid_shapes() {
        for i in 0..200 {
            let case = Case::generate(1, i);
            for s in case.strategies {
                s.validate().unwrap();
            }
        }
    }

    #[test]
    fn nan_class_always_contains_nan() {
        let mut seen = 0;
        for i in 0..400 {
            let case = Case::generate(3, i);
            if case.class == DataClass::NanInf && !case.data.is_empty() {
                seen += 1;
                assert!(case.data.iter().any(|v| v.is_nan()));
            }
        }
        assert!(seen > 0, "generator never produced a NanInf case");
    }
}
