//! Byte-level corruption of valid streams and archives.
//!
//! The helpers here never interpret the buffer; they produce mutated copies
//! for the mutation oracle to feed through the decoders. Offsets of the
//! targeted header patches mirror the layouts in `ceresz_core::stream`
//! (26-byte stream header) and `ceresz_core::archive`.

use crate::rng::Rng;

/// A mutated buffer plus a human-readable description of what was done,
/// so a failure names the exact corruption.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// What the mutation did (e.g. `"bit flip at byte 17 bit 3"`).
    pub what: String,
    /// The corrupted buffer.
    pub bytes: Vec<u8>,
    /// Whether the decoder is *required* to reject this buffer. Payload bit
    /// flips may legitimately decode (wrong values, undetectable without a
    /// checksum); header/length-field forgeries and truncations must not.
    pub must_fail: bool,
}

/// Flip one random bit.
pub fn flip_random_bit(r: &mut Rng, valid: &[u8]) -> Option<Mutation> {
    if valid.is_empty() {
        return None;
    }
    let byte = r.below(valid.len());
    let bit = r.below(8);
    let mut bytes = valid.to_vec();
    bytes[byte] ^= 1 << bit;
    Some(Mutation {
        what: format!("bit flip at byte {byte} bit {bit}"),
        bytes,
        must_fail: false,
    })
}

/// Strict-prefix truncations: a sample of `n` random cut points plus the
/// boundary-adjacent ones (empty, 1 byte, around the 26-byte stream header,
/// and one byte short of complete). Every strict prefix of a valid stream
/// or archive must decode to an error.
pub fn truncations(r: &mut Rng, valid: &[u8], n: usize) -> Vec<Mutation> {
    let len = valid.len();
    let mut cuts: Vec<usize> = [0usize, 1, 4, 13, 25, 26, 27]
        .into_iter()
        .filter(|&c| c < len)
        .collect();
    if len > 1 {
        cuts.push(len - 1);
        for _ in 0..n {
            cuts.push(r.below(len));
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts.into_iter()
        .map(|c| Mutation {
            what: format!("truncated to {c} of {len} bytes"),
            bytes: valid[..c].to_vec(),
            must_fail: true,
        })
        .collect()
}

/// Overwrite `width` bytes at `offset` with the little-endian `value`.
fn patch(valid: &[u8], offset: usize, value: &[u8], what: String) -> Option<Mutation> {
    if offset + value.len() > valid.len() {
        return None;
    }
    let mut bytes = valid.to_vec();
    bytes[offset..offset + value.len()].copy_from_slice(value);
    Some(Mutation {
        what,
        bytes,
        must_fail: true,
    })
}

/// Targeted stream-header forgeries that a decoder must reject *without*
/// allocating output sized by the forged fields: absurd element counts,
/// off-contract block sizes, non-positive or non-finite ε.
pub fn stream_header_forgeries(valid: &[u8], block_size: usize) -> Vec<Mutation> {
    let mut out = Vec::new();
    // count: u64 LE at offset 10.
    for count in [u64::MAX, u64::MAX / 2, 1u64 << 40] {
        out.extend(patch(
            valid,
            10,
            &count.to_le_bytes(),
            format!("forged count = {count}"),
        ));
    }
    // Plausible-looking count inflation: claims more blocks than the payload
    // holds, so the per-block scan must run dry.
    let inflated = (block_size as u64) * 1000;
    out.extend(patch(
        valid,
        10,
        &inflated.to_le_bytes(),
        format!("forged count = {inflated} (inflated)"),
    ));
    // block_size: u32 LE at offset 6.
    for bs in [0u32, 7, 1 << 21, u32::MAX] {
        out.extend(patch(
            valid,
            6,
            &bs.to_le_bytes(),
            format!("forged block_size = {bs}"),
        ));
    }
    // eps: f64 LE at offset 18.
    for eps in [0.0f64, -1.0, f64::NAN, f64::INFINITY] {
        out.extend(patch(
            valid,
            18,
            &eps.to_le_bytes(),
            format!("forged eps = {eps}"),
        ));
    }
    // Magic, version, header width.
    out.extend(patch(valid, 0, b"XSZ1", "forged magic".into()));
    out.extend(patch(valid, 4, &[9], "forged version = 9".into()));
    out.extend(patch(valid, 5, &[3], "forged header width = 3".into()));
    out
}

/// Targeted archive forgeries: field counts and per-field length fields that
/// claim more than the buffer holds. Layout: magic(4) version(1) count(u32 LE)
/// then per-field `[name_len u16][name][ndims u8][dims u64...][stream_len u64]`.
pub fn archive_forgeries(valid: &[u8]) -> Vec<Mutation> {
    let mut out = Vec::new();
    for count in [u32::MAX, u32::MAX / 2, 1u32 << 24] {
        out.extend(patch(
            valid,
            5,
            &count.to_le_bytes(),
            format!("forged field count = {count}"),
        ));
    }
    // First field's name_len sits right after the 9-byte archive header.
    out.extend(patch(
        valid,
        9,
        &u16::MAX.to_le_bytes(),
        "forged name_len = 65535".into(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncations_are_strict_prefixes() {
        let valid: Vec<u8> = (0..100u8).collect();
        let mut r = Rng::new(5);
        for m in truncations(&mut r, &valid, 8) {
            assert!(m.bytes.len() < valid.len());
            assert_eq!(&valid[..m.bytes.len()], &m.bytes[..]);
            assert!(m.must_fail);
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let valid = vec![0u8; 64];
        let mut r = Rng::new(6);
        let m = flip_random_bit(&mut r, &valid).unwrap();
        let diff: u32 = m
            .bytes
            .iter()
            .zip(&valid)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn forgeries_apply_only_when_in_bounds() {
        assert!(stream_header_forgeries(&[0u8; 3], 32).is_empty());
        assert!(!stream_header_forgeries(&[0u8; 64], 32).is_empty());
    }
}
