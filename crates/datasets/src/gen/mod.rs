//! Synthetic generators for the six SDRBench stand-ins.

pub mod cesm;
pub mod hacc;
pub mod hurricane;
pub mod noise;
pub mod nyx;
pub mod qmcpack;
pub mod rtm;
