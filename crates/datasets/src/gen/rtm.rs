//! RTM stand-in: reverse-time-migration seismic wavefield snapshots.
//!
//! SDRBench: 36 snapshots of 449 × 449 × 235 (Table 4). Synthetic:
//! 112 × 112 × 59, three snapshots at increasing times. A band-limited
//! (Ricker-wavelet) spherical wavefront expands from a source; everything
//! the front has not reached — most of the volume at early times — is
//! exactly zero. Those quiet zones become zero blocks, the fast path that
//! makes RTM the highest-throughput and highest-ratio dataset in the paper
//! (773.8 GB/s, ratios up to 31.99 in Table 5).

use crate::field::Field;
use crate::gen::noise::FractalNoise;

/// Grid dims (z × y × x).
pub const DIMS: [usize; 3] = [59, 112, 112];

/// Snapshot names (wavefront radius grows with the snapshot index).
pub const FIELDS: &[&str] = &["snapshot_0500", "snapshot_1500", "snapshot_2500"];

/// Generate one snapshot by index into [`FIELDS`].
#[must_use]
pub fn generate(field_idx: usize, seed: u64) -> Field {
    let idx = field_idx % FIELDS.len();
    let name = FIELDS[idx];
    let seed = seed.wrapping_mul(0xA24B_AED4_963E_E407);
    // Slowly varying velocity-model perturbation scatters the front.
    let heterogeneity = FractalNoise::new(seed, 3, 3.0, 0.5);
    let [nz, ny, nx] = DIMS;
    // Wavefront radius in unit coordinates per snapshot.
    let radius = 0.12 + 0.16 * idx as f32;
    let thickness = 0.05;
    let source = (0.1f32, 0.5f32, 0.5f32); // near-surface source
    let mut data = Vec::with_capacity(nz * ny * nx);
    for iz in 0..nz {
        let z = iz as f32 / nz as f32;
        for iy in 0..ny {
            let y = iy as f32 / ny as f32;
            for ix in 0..nx {
                let x = ix as f32 / nx as f32;
                let h = 1.0 + 0.15 * heterogeneity.sample(x, y, z);
                let r =
                    (((z - source.0).powi(2) + (y - source.1).powi(2) + (x - source.2).powi(2))
                        .sqrt())
                        * h;
                let d = (r - radius) / thickness;
                // Ricker wavelet profile across the front; hard zero beyond
                // two pulse widths — the unreached quiet zone.
                let v = if d.abs() < 2.0 {
                    let a = std::f32::consts::PI * d;
                    (1.0 - 2.0 * a * a) * (-a * a).exp() * 1.0e4 / (0.3 + r)
                } else {
                    0.0
                };
                data.push(v);
            }
        }
    }
    Field::new(name, DIMS.to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate(1, 3).data, generate(1, 3).data);
    }

    #[test]
    fn most_of_the_volume_is_exactly_zero() {
        let f = generate(0, 1);
        let zeros = f.data.iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / f.len() as f64;
        assert!(frac > 0.5, "zero fraction = {frac}");
    }

    #[test]
    fn later_snapshots_have_larger_fronts() {
        let early = generate(0, 1);
        let late = generate(2, 1);
        let nonzero = |f: &Field| f.data.iter().filter(|&&v| v != 0.0).count();
        assert!(nonzero(&late) > nonzero(&early));
    }

    #[test]
    fn wavelet_oscillates() {
        let f = generate(1, 1);
        let (min, max) = f.value_range();
        assert!(min < 0.0 && max > 0.0, "range {min}..{max}");
    }
}
