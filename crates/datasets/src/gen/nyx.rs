//! NYX stand-in: cosmological hydrodynamics fields.
//!
//! SDRBench: 6 fields of 512³ (Table 4). Synthetic: 96³, the same six
//! fields. Densities are log-normal (heavy-tailed — the value range is set
//! by rare halos, so at loose REL bounds most of the volume quantizes to
//! zero, which is why NYX shows near-ceiling ratios at REL 1e-2 in
//! Table 5). Velocities are large-scale Gaussian flows.

use crate::field::Field;
use crate::gen::noise::FractalNoise;

/// Cube side.
pub const SIDE: usize = 96;
/// Grid dims.
pub const DIMS: [usize; 3] = [SIDE, SIDE, SIDE];

/// The six NYX fields.
pub const FIELDS: &[&str] = &[
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
];

/// Generate one field by index into [`FIELDS`].
#[must_use]
pub fn generate(field_idx: usize, seed: u64) -> Field {
    let idx = field_idx % FIELDS.len();
    let name = FIELDS[idx];
    // Densities and temperature share the same underlying structure seed so
    // halos line up across fields, as in a real simulation snapshot.
    let structure_seed = seed.wrapping_mul(0xD1B5_4A32_D192_ED03);
    let velocity_seed = structure_seed.wrapping_add(1 + idx as u64);
    let density = FractalNoise::new(structure_seed, 5, 4.0, 0.6);
    let flow = FractalNoise::new(velocity_seed, 4, 2.0, 0.45);
    let mut data = Vec::with_capacity(SIDE * SIDE * SIDE);
    for iz in 0..SIDE {
        let z = iz as f32 / SIDE as f32;
        for iy in 0..SIDE {
            let y = iy as f32 / SIDE as f32;
            for ix in 0..SIDE {
                let x = ix as f32 / SIDE as f32;
                let d = density.sample(x, y, z);
                let v = match idx {
                    // Log-normal density: exp of a Gaussian-ish field. The
                    // tail (halos) sets the range; the bulk sits near the
                    // mean — heavy-tailed, as in the real data.
                    0 => (4.0 * d).exp() * 1.0e10,
                    1 => (4.5 * d).exp() * 1.0e10,
                    // Temperature correlates with density (shock heating).
                    2 => 1.0e4 * (1.0 + (3.0 * d).exp()),
                    // Bulk velocity: heavy-tailed (f⁴ keeps the sign but
                    // crushes the bulk toward 0 while rare jets set the
                    // range) — at REL 1e-2 most of the volume quantizes to
                    // zero blocks, giving NYX its near-ceiling Table 5
                    // ratios.
                    _ => {
                        let f0 = flow.sample(x, y, z);
                        1.0e7 * f0.powi(3) * f0.abs()
                    }
                };
                data.push(v);
            }
        }
    }
    Field::new(name, DIMS.to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate(3, 2).data, generate(3, 2).data);
    }

    #[test]
    fn density_is_heavy_tailed() {
        let f = generate(0, 9);
        let (min, max) = f.value_range();
        assert!(min > 0.0);
        let mean: f64 = f.data.iter().map(|&v| f64::from(v)).sum::<f64>() / f.len() as f64;
        // Range dominated by rare halos: max is many times the mean.
        assert!(f64::from(max) > 5.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn velocity_is_signed_and_bounded() {
        let f = generate(3, 9);
        let (min, max) = f.value_range();
        assert!(min < 0.0 && max > 0.0);
        assert!(max.abs() <= 1.0e7 * 1.01);
    }

    #[test]
    fn velocity_components_differ() {
        assert_ne!(generate(3, 9).data, generate(4, 9).data);
    }

    #[test]
    fn densities_correlate_across_fields() {
        // Shared structure seed: baryon and dark matter peaks coincide.
        let b = generate(0, 9);
        let d = generate(1, 9);
        let bi = b
            .data
            .iter()
            .enumerate()
            .max_by(|a, c| a.1.total_cmp(c.1))
            .map(|(i, _)| i)
            .unwrap();
        // Dark matter at the baryon peak is also in its top decile.
        let mut sorted: Vec<f32> = d.data.clone();
        sorted.sort_by(f32::total_cmp);
        let p90 = sorted[(sorted.len() * 9) / 10];
        assert!(d.data[bi] >= p90);
    }
}
