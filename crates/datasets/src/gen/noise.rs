//! Seeded value-noise helpers shared by the dataset generators.
//!
//! Value noise (random lattice + multilinear interpolation, summed over
//! octaves) gives band-limited smooth fields whose roughness is controlled
//! by the octave count and persistence — exactly the knob we tune so each
//! synthetic dataset lands in its real counterpart's post-Lorenzo residual
//! regime.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded random lattice for 3-D value noise (use `z = 0` for 2-D).
pub struct NoiseLattice {
    values: Vec<f32>,
    nx: usize,
    ny: usize,
    nz: usize,
}

impl NoiseLattice {
    /// Build an `nx × ny × nz` lattice of uniform values in [-1, 1].
    #[must_use]
    pub fn new(seed: u64, nx: usize, ny: usize, nz: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let values = (0..nx * ny * nz)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        Self { values, nx, ny, nz }
    }

    fn at(&self, x: usize, y: usize, z: usize) -> f32 {
        let x = x % self.nx;
        let y = y % self.ny;
        let z = z % self.nz;
        self.values[(z * self.ny + y) * self.nx + x]
    }

    /// Trilinearly interpolated sample at continuous coordinates.
    #[must_use]
    pub fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let (x0, fx) = split(x);
        let (y0, fy) = split(y);
        let (z0, fz) = split(z);
        let mut acc = 0.0;
        for (dz, wz) in [(0usize, 1.0 - fz), (1, fz)] {
            for (dy, wy) in [(0usize, 1.0 - fy), (1, fy)] {
                for (dx, wx) in [(0usize, 1.0 - fx), (1, fx)] {
                    acc += wx * wy * wz * self.at(x0 + dx, y0 + dy, z0 + dz);
                }
            }
        }
        acc
    }
}

fn split(v: f32) -> (usize, f32) {
    let f = v.floor();
    ((f.max(0.0)) as usize, v - f)
}

/// Fractal (multi-octave) value noise in [-1, 1]-ish range.
pub struct FractalNoise {
    octaves: Vec<NoiseLattice>,
    persistence: f32,
    base_freq: f32,
}

impl FractalNoise {
    /// `octaves` layers starting at `base_freq` lattice cells per unit,
    /// each octave doubling frequency and scaling amplitude by
    /// `persistence`. Higher persistence ⇒ rougher field ⇒ larger Lorenzo
    /// residuals.
    #[must_use]
    pub fn new(seed: u64, octaves: usize, base_freq: f32, persistence: f32) -> Self {
        let lattices = (0..octaves)
            .map(|o| {
                let cells = (base_freq * (1 << o) as f32).ceil() as usize + 2;
                NoiseLattice::new(
                    seed.wrapping_add(o as u64 * 0x9E37_79B9),
                    cells,
                    cells,
                    cells,
                )
            })
            .collect();
        Self {
            octaves: lattices,
            persistence,
            base_freq,
        }
    }

    /// Sample at unit-cube coordinates (components in [0, 1]).
    #[must_use]
    pub fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let mut amp = 1.0;
        let mut freq = self.base_freq;
        let mut acc = 0.0;
        let mut norm = 0.0;
        for lattice in &self.octaves {
            acc += amp * lattice.sample(x * freq, y * freq, z * freq);
            norm += amp;
            amp *= self.persistence;
            freq *= 2.0;
        }
        if norm > 0.0 {
            acc / norm
        } else {
            0.0
        }
    }
}

/// White noise stream in [-1, 1].
pub struct WhiteNoise {
    rng: SmallRng,
}

impl WhiteNoise {
    /// Seeded stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next sample in [-1, 1].
    pub fn sample(&mut self) -> f32 {
        self.rng.gen_range(-1.0..1.0)
    }

    /// Next uniform in [0, 1).
    pub fn next_unit(&mut self) -> f32 {
        self.rng.gen_range(0.0..1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_is_deterministic() {
        let a = NoiseLattice::new(7, 8, 8, 8);
        let b = NoiseLattice::new(7, 8, 8, 8);
        assert_eq!(a.sample(1.3, 2.7, 0.1), b.sample(1.3, 2.7, 0.1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = NoiseLattice::new(1, 8, 8, 8);
        let b = NoiseLattice::new(2, 8, 8, 8);
        assert_ne!(a.sample(1.5, 1.5, 1.5), b.sample(1.5, 1.5, 1.5));
    }

    #[test]
    fn fractal_sample_bounded() {
        let n = FractalNoise::new(3, 4, 4.0, 0.5);
        for i in 0..100 {
            let v = n.sample(i as f32 / 100.0, 0.5, 0.25);
            assert!(v.abs() <= 1.0 + 1e-6, "sample {v} out of range");
        }
    }

    #[test]
    fn higher_persistence_is_rougher() {
        // Mean absolute first difference grows with persistence.
        let rough = FractalNoise::new(5, 5, 4.0, 0.9);
        let smooth = FractalNoise::new(5, 5, 4.0, 0.2);
        let diff = |n: &FractalNoise| -> f32 {
            let vals: Vec<f32> = (0..1000)
                .map(|i| n.sample(i as f32 / 1000.0, 0.3, 0.6))
                .collect();
            vals.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>() / 999.0
        };
        assert!(diff(&rough) > diff(&smooth));
    }
}
