//! HACC stand-in: cosmological N-body particle data.
//!
//! SDRBench: 6 one-dimensional arrays of 280,953,867 particles (Table 4).
//! Synthetic: 1,048,576 particles, same six components. Particle positions
//! are clustered (halos) but stored in simulation order, so consecutive
//! particles are *weakly* correlated — HACC is the hardest dataset for
//! Lorenzo prediction and shows the narrowest compression-ratio range in
//! Table 5 (4.66–9.18 at REL 1e-2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::field::Field;

/// Particle count.
pub const PARTICLES: usize = 1 << 20;

/// The six HACC components.
pub const FIELDS: &[&str] = &["xx", "yy", "zz", "vx", "vy", "vz"];

/// Box size in comoving Mpc/h (the real HACC runs use 256²⁵⁶-ish boxes;
/// the absolute scale only matters for the REL bound resolution).
pub const BOX_SIZE: f32 = 256.0;

/// Generate one component by index into [`FIELDS`].
#[must_use]
pub fn generate(field_idx: usize, seed: u64) -> Field {
    let idx = field_idx % FIELDS.len();
    let name = FIELDS[idx];
    // Positions share a seed so (xx, yy, zz) describe the same particles.
    let pos_seed = seed.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7);
    // Positions (idx < 3) share one stream so xx/yy/zz describe the same
    // halos; each velocity component gets its own stream.
    let mut rng = SmallRng::seed_from_u64(if idx < 3 {
        pos_seed
    } else {
        pos_seed ^ (0xDEAD_BEEF + idx as u64)
    });
    let mut data = Vec::with_capacity(PARTICLES);
    if idx < 3 {
        // Halo model: particles arrive in halo-sized bursts. Within a halo,
        // positions are Gaussian around the center — consecutive particles
        // share the halo, giving the weak correlation Lorenzo can exploit.
        let mut remaining_in_halo = 0usize;
        let mut center = [0f32; 3];
        let mut halo_radius = 1.0f32;
        for _ in 0..PARTICLES {
            if remaining_in_halo == 0 {
                remaining_in_halo = rng.gen_range(64..4096);
                center = [
                    rng.gen_range(0.0..BOX_SIZE),
                    rng.gen_range(0.0..BOX_SIZE),
                    rng.gen_range(0.0..BOX_SIZE),
                ];
                halo_radius = rng.gen_range(0.2..4.0);
            }
            remaining_in_halo -= 1;
            // Sum of three uniforms ≈ Gaussian; cheap and seed-stable.
            let g: f32 = (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).sum::<f32>() / 3.0;
            let v = (center[idx] + halo_radius * g).rem_euclid(BOX_SIZE);
            data.push(v);
        }
    } else {
        // Velocities: virial motion, km/s scale, uncorrelated sample to
        // sample but with a halo-scale bulk-flow component.
        let mut bulk = 0.0f32;
        let mut remaining = 0usize;
        for _ in 0..PARTICLES {
            if remaining == 0 {
                remaining = rng.gen_range(64..4096);
                bulk = rng.gen_range(-600.0..600.0);
            }
            remaining -= 1;
            let g: f32 = (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).sum::<f32>();
            data.push(bulk + 85.0 * g);
        }
    }
    Field::new(name, vec![PARTICLES], data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate(0, 5).data[..100], generate(0, 5).data[..100]);
    }

    #[test]
    fn positions_stay_in_the_box() {
        let f = generate(1, 5);
        let (min, max) = f.value_range();
        assert!(min >= 0.0 && max < BOX_SIZE);
    }

    #[test]
    fn positions_are_locally_correlated() {
        // Mean |Δ| between consecutive particles is far below the box size
        // (halo clustering), but not near zero (not smooth data).
        let f = generate(0, 5);
        let mean_step: f64 = f
            .data
            .windows(2)
            .take(100_000)
            .map(|w| f64::from((w[1] - w[0]).abs()))
            .sum::<f64>()
            / 100_000.0;
        assert!(mean_step < 64.0, "mean step {mean_step} — not clustered");
        assert!(mean_step > 0.05, "mean step {mean_step} — too smooth");
    }

    #[test]
    fn velocities_are_roughly_centered() {
        let f = generate(3, 5);
        let mean: f64 = f.data.iter().map(|&v| f64::from(v)).sum::<f64>() / f.len() as f64;
        assert!(mean.abs() < 100.0, "mean velocity = {mean}");
    }

    #[test]
    fn components_differ() {
        assert_ne!(generate(0, 5).data[..64], generate(1, 5).data[..64]);
        assert_ne!(generate(3, 5).data[..64], generate(4, 5).data[..64]);
    }
}
