//! CESM-ATM stand-in: 2-D climate/atmosphere fields.
//!
//! SDRBench: 79 fields of 1800 × 3600 (Table 4). Synthetic: 450 × 900
//! (1/4 scale per axis), four representative fields. Climate fields are
//! dominated by a smooth latitudinal gradient plus weather-scale fractal
//! structure; cloud fractions add plateau regions (clamped at 0/1) that
//! compress very well — CESM shows both the widest ratio range and a large
//! max fixed length in the paper (Tables 3, 5).

use crate::field::Field;
use crate::gen::noise::{FractalNoise, WhiteNoise};

/// Grid rows (latitude).
pub const ROWS: usize = 450;
/// Grid columns (longitude).
pub const COLS: usize = 900;

/// Representative field names.
pub const FIELDS: &[&str] = &["TS", "CLDHGH", "PRECT", "FLDSC"];

/// Generate one field by index into [`FIELDS`].
#[must_use]
pub fn generate(field_idx: usize, seed: u64) -> Field {
    let name = FIELDS[field_idx % FIELDS.len()];
    let seed = seed
        .wrapping_mul(0x517C_C1B7_2722_0A95)
        .wrapping_add(field_idx as u64);
    let weather = FractalNoise::new(seed, 5, 6.0, 0.55);
    let mut spikes = WhiteNoise::new(seed ^ 0xFACE);
    let mut data = Vec::with_capacity(ROWS * COLS);
    for i in 0..ROWS {
        let lat = i as f32 / ROWS as f32; // 0 = pole, 1 = pole
                                          // Zonal mean: warm equator, cold poles. Surface temperature sits
                                          // at a large offset (≈290 K) relative to its spatial range (≈25 K),
                                          // which is what pushes CESM's worst-block fixed length to 17 bits
                                          // at REL 1e-4 (Table 3): the first residual of a block is the raw
                                          // quantized value, |p| ≈ |v|max / (2·λ·range).
        let zonal = 288.0 + 9.0 * (std::f32::consts::PI * lat).sin();
        for j in 0..COLS {
            let lon = j as f32 / COLS as f32;
            let w = weather.sample(lon, lat, 0.0);
            let v = match field_idx % FIELDS.len() {
                // Surface temperature in kelvin.
                0 => zonal + 3.5 * w,
                // Cloud fraction: noise pushed into [0, 1] with plateaus.
                1 => (0.5 + 0.9 * w).clamp(0.0, 1.0),
                // Precipitation: exactly zero outside storm systems — the
                // sparse field class that drives CESM's high-ratio end of
                // Table 5.
                2 => {
                    if w > 0.35 {
                        (w - 0.35) * 25.0
                    } else {
                        0.0
                    }
                }
                // Downwelling flux: positive, with rare convective spikes
                // that stretch the value range (drives REL-bound behaviour).
                _ => {
                    let base = (140.0 + 90.0 * w).max(0.0);
                    if spikes.next_unit() < 0.0005 {
                        base + 900.0
                    } else {
                        base
                    }
                }
            };
            data.push(v);
        }
    }
    Field::new(name, vec![ROWS, COLS], data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate(0, 1).data, generate(0, 1).data);
    }

    #[test]
    fn fields_differ() {
        assert_ne!(generate(0, 1).data, generate(1, 1).data);
        assert_ne!(generate(0, 1).data, generate(0, 2).data);
    }

    #[test]
    fn temperature_is_physical() {
        let f = generate(0, 7);
        let (min, max) = f.value_range();
        assert!(min > 150.0 && max < 350.0, "range {min}..{max}");
    }

    #[test]
    fn cloud_fraction_is_bounded() {
        let f = generate(1, 7);
        let (min, max) = f.value_range();
        assert!((0.0..=1.0).contains(&min) && (0.0..=1.0).contains(&max));
    }

    #[test]
    fn precipitation_is_mostly_zero() {
        let f = generate(2, 7);
        let zeros = f.data.iter().filter(|&&v| v == 0.0).count();
        assert!(
            zeros as f64 / f.len() as f64 > 0.5,
            "zero fraction = {}",
            zeros as f64 / f.len() as f64
        );
    }

    #[test]
    fn flux_has_spikes_widening_the_range() {
        let f = generate(3, 7);
        let (_, max) = f.value_range();
        assert!(max > 500.0, "expected convective spikes, max = {max}");
    }
}
