//! QMCPack stand-in: quantum Monte Carlo wavefunction slices.
//!
//! SDRBench: 2 fields of 33120 × 69 × 69 (Table 4) — stacked orbital slices.
//! Synthetic: 288 × 69 × 69, two spin channels. Orbitals are oscillatory
//! (Bloch-like waves under a Gaussian envelope), giving moderate Lorenzo
//! residuals — QMCPack has the smallest profiled fixed length of the three
//! datasets in Table 3 (12 vs 13/17).

use crate::field::Field;
use crate::gen::noise::{FractalNoise, WhiteNoise};

/// Grid: orbital-stack × y × x.
pub const DIMS: [usize; 3] = [288, 69, 69];

/// Representative field names (the two spin channels).
pub const FIELDS: &[&str] = &["einspline_spin0", "einspline_spin1"];

/// Generate one field by index into [`FIELDS`].
#[must_use]
pub fn generate(field_idx: usize, seed: u64) -> Field {
    let name = FIELDS[field_idx % FIELDS.len()];
    let seed = seed
        .wrapping_mul(0x9E6C_63D0_876A_1B73)
        .wrapping_add(field_idx as u64);
    let modulation = FractalNoise::new(seed, 3, 3.0, 0.5);
    let mut phases = WhiteNoise::new(seed ^ 0xBEEF);
    let [ns, ny, nx] = DIMS;
    let mut data = Vec::with_capacity(ns * ny * nx);
    for s in 0..ns {
        // Each slice is one orbital with its own wave vector and phase.
        let kx = 2.0 + 6.0 * phases.next_unit();
        let ky = 2.0 + 6.0 * phases.next_unit();
        let phase = phases.sample() * std::f32::consts::PI;
        let zs = s as f32 / ns as f32;
        for iy in 0..ny {
            let y = iy as f32 / ny as f32;
            for ix in 0..nx {
                let x = ix as f32 / nx as f32;
                let wave = (2.0 * std::f32::consts::PI * (kx * x + ky * y) + phase).sin();
                // Gaussian envelope centered per-orbital + slow modulation.
                let env = (-((x - 0.5).powi(2) + (y - 0.5).powi(2)) / 0.055).exp();
                let m = 1.0 + 0.3 * modulation.sample(x, y, zs);
                data.push(0.05 * wave * env * m);
            }
        }
    }
    Field::new(name, DIMS.to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate(0, 11).data, generate(0, 11).data);
    }

    #[test]
    fn spin_channels_differ() {
        assert_ne!(generate(0, 11).data, generate(1, 11).data);
    }

    #[test]
    fn wavefunction_oscillates_around_zero() {
        let f = generate(0, 4);
        let mean: f64 = f.data.iter().map(|&v| f64::from(v)).sum::<f64>() / f.len() as f64;
        let (min, max) = f.value_range();
        assert!(min < 0.0 && max > 0.0);
        assert!(mean.abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn envelope_suppresses_the_boundary() {
        let f = generate(0, 4);
        let [_, ny, nx] = DIMS;
        // Corners are far from the envelope center: tiny amplitudes.
        let corner_max = (0..10)
            .map(|s| f.data[s * ny * nx].abs())
            .fold(0.0f32, f32::max);
        let (min, max) = f.value_range();
        let amp = max.max(-min);
        assert!(corner_max < amp * 0.3);
    }
}
