//! Hurricane ISABEL stand-in: 3-D weather simulation fields.
//!
//! SDRBench: 13 fields of 500 × 500 × 100 (Table 4). Synthetic:
//! 125 × 125 × 25, four representative fields around an idealized vortex.
//! Hurricane has the *lowest* CereSZ throughput in Fig. 11 — its fields are
//! rough relative to their value range (little sparsity, strong gradients
//! near the eyewall), so the generator keeps the dynamic range tight and the
//! turbulence persistent.

use crate::field::Field;
use crate::gen::noise::FractalNoise;

/// Grid: z (height) × y × x, slowest first.
pub const DIMS: [usize; 3] = [25, 125, 125];

/// Representative field names.
pub const FIELDS: &[&str] = &["Uf", "Vf", "PRECIPf", "Pf"];

/// Generate one field by index into [`FIELDS`].
#[must_use]
pub fn generate(field_idx: usize, seed: u64) -> Field {
    let name = FIELDS[field_idx % FIELDS.len()];
    let seed = seed
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add(field_idx as u64);
    let turb = FractalNoise::new(seed, 6, 8.0, 0.72);
    let [nz, ny, nx] = DIMS;
    let mut data = Vec::with_capacity(nz * ny * nx);
    let (cy, cx) = (0.5f32, 0.5f32);
    for iz in 0..nz {
        let z = iz as f32 / nz as f32;
        for iy in 0..ny {
            let y = iy as f32 / ny as f32;
            for ix in 0..nx {
                let x = ix as f32 / nx as f32;
                let dx = x - cx;
                let dy = y - cy;
                let r = (dx * dx + dy * dy).sqrt().max(1e-3);
                // Rankine-like vortex tangential speed: peaks at the eyewall.
                let r_eye = 0.08;
                let speed = if r < r_eye {
                    60.0 * r / r_eye
                } else {
                    60.0 * r_eye / r
                };
                let t = turb.sample(x, y, z);
                let v = match field_idx % FIELDS.len() {
                    // Horizontal wind components (tangential) + turbulence.
                    0 => speed * (-dy / r) + 14.0 * t,
                    1 => speed * (dx / r) + 14.0 * t,
                    // Precipitation: zero outside rain bands.
                    2 => {
                        let band = t * (1.0 - z) - 0.35;
                        if band > 0.0 {
                            band * 40.0
                        } else {
                            0.0
                        }
                    }
                    // Pressure: low at the eye, turbulent elsewhere.
                    _ => 960.0 + 55.0 * (1.0 - (-r * r / 0.02).exp()) + 6.0 * t,
                };
                data.push(v);
            }
        }
    }
    Field::new(name, DIMS.to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate(2, 5).data, generate(2, 5).data);
    }

    #[test]
    fn wind_field_is_vortical() {
        // Tangential wind flips sign across the eye.
        let f = generate(0, 3);
        let [_, ny, nx] = DIMS;
        let north = f.data[(ny / 4) * nx + nx / 2];
        let south = f.data[(3 * ny / 4) * nx + nx / 2];
        assert!(north * south < 0.0, "no vortex: {north} vs {south}");
    }

    #[test]
    fn pressure_has_an_eye_minimum() {
        let f = generate(3, 3);
        let [_, ny, nx] = DIMS;
        let center = f.data[(ny / 2) * nx + nx / 2];
        let edge = f.data[nx / 8];
        assert!(center < edge, "eye {center} !< edge {edge}");
    }

    #[test]
    fn dims_are_consistent() {
        let f = generate(1, 1);
        assert_eq!(f.dims, DIMS.to_vec());
        assert_eq!(f.len(), DIMS.iter().product::<usize>());
    }
}
