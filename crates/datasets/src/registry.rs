//! Dataset registry: Table 4 metadata plus uniform access to the generators.

use crate::field::Field;
use crate::gen;

/// The six evaluation datasets (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// CESM-ATM — climate simulation, 2-D fields.
    CesmAtm,
    /// Hurricane ISABEL — weather simulation, 3-D fields.
    Hurricane,
    /// QMCPack — quantum Monte Carlo orbitals.
    QmcPack,
    /// NYX — cosmological hydrodynamics cubes.
    Nyx,
    /// RTM — reverse-time-migration seismic snapshots.
    Rtm,
    /// HACC — cosmological N-body particles, 1-D.
    Hacc,
}

/// All datasets in the paper's table order.
pub const ALL_DATASETS: [DatasetId; 6] = [
    DatasetId::CesmAtm,
    DatasetId::Hurricane,
    DatasetId::QmcPack,
    DatasetId::Nyx,
    DatasetId::Rtm,
    DatasetId::Hacc,
];

/// Table 4 metadata plus the synthetic scale actually generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Display name.
    pub name: &'static str,
    /// Scientific domain (Table 4 column).
    pub domain: &'static str,
    /// Field count in the real SDRBench dataset.
    pub paper_fields: usize,
    /// Per-field dimensions in the real dataset.
    pub paper_dims: &'static str,
    /// Synthetic field names generated here.
    pub synthetic_fields: Vec<&'static str>,
    /// Synthetic per-field dimensions.
    pub synthetic_dims: Vec<usize>,
}

impl DatasetId {
    /// Metadata for this dataset.
    #[must_use]
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetId::CesmAtm => DatasetSpec {
                name: "CESM-ATM",
                domain: "Climate Simulation",
                paper_fields: 79,
                paper_dims: "1,800x3,600",
                synthetic_fields: gen::cesm::FIELDS.to_vec(),
                synthetic_dims: vec![gen::cesm::ROWS, gen::cesm::COLS],
            },
            DatasetId::Hurricane => DatasetSpec {
                name: "Hurricane",
                domain: "Weather Simulation",
                paper_fields: 13,
                paper_dims: "500x500x100",
                synthetic_fields: gen::hurricane::FIELDS.to_vec(),
                synthetic_dims: gen::hurricane::DIMS.to_vec(),
            },
            DatasetId::QmcPack => DatasetSpec {
                name: "QMCPack",
                domain: "Quantum Monte Carlo",
                paper_fields: 2,
                paper_dims: "33120x69x69",
                synthetic_fields: gen::qmcpack::FIELDS.to_vec(),
                synthetic_dims: gen::qmcpack::DIMS.to_vec(),
            },
            DatasetId::Nyx => DatasetSpec {
                name: "NYX",
                domain: "Cosmic Simulation",
                paper_fields: 6,
                paper_dims: "512x512x512",
                synthetic_fields: gen::nyx::FIELDS.to_vec(),
                synthetic_dims: gen::nyx::DIMS.to_vec(),
            },
            DatasetId::Rtm => DatasetSpec {
                name: "RTM",
                domain: "Seismic Imaging",
                paper_fields: 36,
                paper_dims: "449x449x235",
                synthetic_fields: gen::rtm::FIELDS.to_vec(),
                synthetic_dims: gen::rtm::DIMS.to_vec(),
            },
            DatasetId::Hacc => DatasetSpec {
                name: "HACC",
                domain: "Cosmic Simulation",
                paper_fields: 6,
                paper_dims: "280,953,867",
                synthetic_fields: gen::hacc::FIELDS.to_vec(),
                synthetic_dims: vec![gen::hacc::PARTICLES],
            },
        }
    }

    /// Number of synthetic fields.
    #[must_use]
    pub fn n_fields(&self) -> usize {
        self.spec().synthetic_fields.len()
    }
}

/// Generate field `field_idx` of `dataset` with the given seed.
#[must_use]
pub fn generate_field(dataset: DatasetId, field_idx: usize, seed: u64) -> Field {
    match dataset {
        DatasetId::CesmAtm => gen::cesm::generate(field_idx, seed),
        DatasetId::Hurricane => gen::hurricane::generate(field_idx, seed),
        DatasetId::QmcPack => gen::qmcpack::generate(field_idx, seed),
        DatasetId::Nyx => gen::nyx::generate(field_idx, seed),
        DatasetId::Rtm => gen::rtm::generate(field_idx, seed),
        DatasetId::Hacc => gen::hacc::generate(field_idx, seed),
    }
}

/// Generate every field of a dataset.
#[must_use]
pub fn generate_all(dataset: DatasetId, seed: u64) -> Vec<Field> {
    (0..dataset.n_fields())
        .map(|i| generate_field(dataset, i, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_generates_every_field() {
        for ds in ALL_DATASETS {
            let spec = ds.spec();
            for i in 0..ds.n_fields() {
                let f = generate_field(ds, i, 42);
                assert_eq!(f.dims, spec.synthetic_dims, "{ds:?} field {i}");
                assert_eq!(f.name, spec.synthetic_fields[i]);
                assert!(f.data.iter().all(|v| v.is_finite()), "{ds:?} field {i}");
            }
        }
    }

    #[test]
    fn table4_metadata_matches_paper() {
        assert_eq!(DatasetId::CesmAtm.spec().paper_fields, 79);
        assert_eq!(DatasetId::Hurricane.spec().paper_dims, "500x500x100");
        assert_eq!(DatasetId::Hacc.spec().paper_dims, "280,953,867");
        assert_eq!(DatasetId::Rtm.spec().domain, "Seismic Imaging");
    }

    #[test]
    fn fields_are_reasonably_sized() {
        for ds in ALL_DATASETS {
            let f = generate_field(ds, 0, 1);
            assert!(
                f.len() >= 100_000,
                "{ds:?} too small for meaningful benchmarks: {}",
                f.len()
            );
            assert!(f.len() <= 4_000_000, "{ds:?} too large for CI: {}", f.len());
        }
    }
}
