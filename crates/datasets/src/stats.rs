//! Field statistics: the data properties that determine compression
//! behaviour, used to document how the synthetic stand-ins relate to their
//! SDRBench originals (see the `dataset_stats` bench binary).

use crate::field::Field;

/// Summary statistics of one field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    /// Minimum finite value.
    pub min: f32,
    /// Maximum finite value.
    pub max: f32,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Fraction of exact zeros (drives the zero-block fast path).
    pub zero_fraction: f64,
    /// Mean `|x[i+1] − x[i]|` normalized by the value range — the smoothness
    /// measure that predicts post-Lorenzo residual widths.
    pub normalized_roughness: f64,
    /// `|max value| / range` — predicts the first-element quantized
    /// magnitude under REL bounds (the fixed-length driver).
    pub offset_ratio: f64,
}

impl FieldStats {
    /// Compute statistics of a field.
    #[must_use]
    pub fn of(field: &Field) -> Self {
        Self::of_slice(&field.data)
    }

    /// Compute statistics of a raw slice.
    #[must_use]
    pub fn of_slice(data: &[f32]) -> Self {
        if data.is_empty() {
            return Self {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std: 0.0,
                zero_fraction: 0.0,
                normalized_roughness: 0.0,
                offset_ratio: 0.0,
            };
        }
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &v in data {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
            sum += f64::from(v);
            if v == 0.0 {
                zeros += 1;
            }
        }
        if min > max {
            min = 0.0;
            max = 0.0;
        }
        let n = data.len() as f64;
        let mean = sum / n;
        let var = data
            .iter()
            .map(|&v| {
                let d = f64::from(v) - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let range = f64::from(max) - f64::from(min);
        let rough = if data.len() > 1 && range > 0.0 {
            data.windows(2)
                .map(|w| f64::from((w[1] - w[0]).abs()))
                .sum::<f64>()
                / (n - 1.0)
                / range
        } else {
            0.0
        };
        let offset = if range > 0.0 {
            f64::from(max.abs().max(min.abs())) / range
        } else {
            0.0
        };
        Self {
            min,
            max,
            mean,
            std: var.sqrt(),
            zero_fraction: zeros as f64 / n,
            normalized_roughness: rough,
            offset_ratio: offset,
        }
    }

    /// Predicted worst-block fixed length under a REL bound `λ`: bits of
    /// `offset_ratio / (2λ)` (the first residual of a block is the raw
    /// quantized value).
    #[must_use]
    pub fn predicted_fixed_length(&self, lambda: f64) -> u32 {
        if lambda <= 0.0 || self.offset_ratio <= 0.0 {
            return 0;
        }
        let p = self.offset_ratio / (2.0 * lambda);
        (p.max(1.0).log2().ceil() as u32).min(31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{generate_field, DatasetId};

    #[test]
    fn basics_on_known_data() {
        let s = FieldStats::of_slice(&[0.0, 0.0, 1.0, 3.0]);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert!((s.zero_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_slice_is_zeroes() {
        let s = FieldStats::of_slice(&[]);
        assert_eq!(s.zero_fraction, 0.0);
        assert_eq!(s.normalized_roughness, 0.0);
    }

    #[test]
    fn rtm_is_sparse_and_hacc_is_rough() {
        let rtm = FieldStats::of(&generate_field(DatasetId::Rtm, 0, 1));
        assert!(rtm.zero_fraction > 0.5, "RTM zeros {}", rtm.zero_fraction);
        let hacc = FieldStats::of(&generate_field(DatasetId::Hacc, 0, 1));
        let cesm = FieldStats::of(&generate_field(DatasetId::CesmAtm, 0, 1));
        assert!(
            hacc.normalized_roughness > cesm.normalized_roughness,
            "HACC {} vs CESM {}",
            hacc.normalized_roughness,
            cesm.normalized_roughness
        );
    }

    #[test]
    fn fixed_length_prediction_matches_table3() {
        // The CESM temperature field was tuned so its offset ratio puts the
        // worst block at 17 bits under REL 1e-4 (Table 3).
        let ts = FieldStats::of(&generate_field(DatasetId::CesmAtm, 0, 2024));
        let f = ts.predicted_fixed_length(1e-4);
        assert!((16..=18).contains(&f), "predicted f = {f}");
    }

    #[test]
    fn prediction_edge_cases() {
        let s = FieldStats::of_slice(&[5.0; 16]);
        assert_eq!(s.predicted_fixed_length(-1.0), 0);
        assert_eq!(FieldStats::of_slice(&[]).predicted_fixed_length(1e-3), 0);
    }
}
