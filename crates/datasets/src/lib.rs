//! # datasets
//!
//! Deterministic synthetic stand-ins for the six SDRBench datasets the
//! CereSZ paper evaluates on (Table 4), plus raw `f32` file I/O for running
//! against the real files when available.
//!
//! We cannot redistribute SDRBench, and the full datasets (up to 280 M
//! elements) exceed laptop scale anyway. Each generator reproduces the two
//! properties the CereSZ pipeline is actually sensitive to:
//!
//! * **smoothness** — the magnitude of first-order (Lorenzo) residuals,
//!   which sets the per-block fixed length, the bit-shuffle cycle count, and
//!   therefore throughput and ratio;
//! * **sparsity** — the fraction of all-zero regions, which drives the
//!   zero-block fast path (RTM's quiet zones are why it tops Fig. 11).
//!
//! Dimensions are scaled down from Table 4 (documented per generator); the
//! field count is trimmed to a representative handful so a full 6-dataset ×
//! 3-error-bound sweep runs in seconds.
//!
//! ```
//! use datasets::{DatasetId, generate_field};
//! let field = generate_field(DatasetId::Nyx, 0, 42);
//! assert_eq!(field.data.len(), field.dims.iter().product::<usize>());
//! ```

#![forbid(unsafe_code)]
pub mod field;
pub mod gen;
pub mod io;
pub mod registry;
pub mod stats;

pub use field::Field;
pub use registry::{generate_field, DatasetId, DatasetSpec, ALL_DATASETS};
pub use stats::FieldStats;
