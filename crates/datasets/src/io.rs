//! Raw `f32` file I/O in SDRBench layout (little-endian, no header), so the
//! benchmarks can run against the real datasets when the files are present.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::field::Field;

/// Read a raw little-endian `f32` file into a [`Field`].
///
/// `dims` must multiply to the file's element count.
pub fn read_f32_file(path: &Path, dims: Vec<usize>) -> std::io::Result<Field> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() % 4 != 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "file size is not a multiple of 4 bytes",
        ));
    }
    let expected: usize = dims.iter().product();
    if expected != bytes.len() / 4 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "dims {:?} expect {} elements, file has {}",
                dims,
                expected,
                bytes.len() / 4
            ),
        ));
    }
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let name = path
        .file_stem()
        .map_or_else(|| "field".to_string(), |s| s.to_string_lossy().into_owned());
    Ok(Field::new(name, dims, data))
}

/// Write a field as a raw little-endian `f32` file.
pub fn write_f32_file(field: &Field, path: &Path) -> std::io::Result<()> {
    let mut writer = BufWriter::new(File::create(path)?);
    for &v in &field.data {
        writer.write_all(&v.to_le_bytes())?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_file() {
        let dir = std::env::temp_dir().join("ceresz-datasets-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.f32");
        let field = Field::new(
            "roundtrip",
            vec![4, 8],
            (0..32).map(|i| i as f32 * 1.25 - 3.0).collect(),
        );
        write_f32_file(&field, &path).unwrap();
        let back = read_f32_file(&path, vec![4, 8]).unwrap();
        assert_eq!(back.data, field.data);
        assert_eq!(back.dims, field.dims);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_dims_rejected() {
        let dir = std::env::temp_dir().join("ceresz-datasets-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dims.f32");
        let field = Field::new("dims", vec![8], vec![0.0; 8]);
        write_f32_file(&field, &path).unwrap();
        assert!(read_f32_file(&path, vec![9]).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(read_f32_file(Path::new("/nonexistent/foo.f32"), vec![1]).is_err());
    }
}
