//! A named scientific field: a flat `f32` array with logical dimensions.

/// One field of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name, e.g. `"temperature"` or `"velocity_x"`.
    pub name: String,
    /// Logical dimensions, slowest-varying first. 1-D data has one entry.
    pub dims: Vec<usize>,
    /// Row-major values.
    pub data: Vec<f32>,
}

impl Field {
    /// Construct, checking that dims multiply to the data length.
    #[must_use]
    pub fn new(name: impl Into<String>, dims: Vec<usize>, data: Vec<f32>) -> Self {
        let expected: usize = dims.iter().product();
        assert_eq!(expected, data.len(), "dims do not match data length");
        Self {
            name: name.into(),
            dims,
            data,
        }
    }

    /// Element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the field holds no data.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Minimum and maximum finite values.
    #[must_use]
    pub fn value_range(&self) -> (f32, f32) {
        ceresz_range(&self.data)
    }
}

fn ceresz_range(data: &[f32]) -> (f32, f32) {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in data {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if min > max {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks_dims() {
        let f = Field::new("t", vec![2, 3], vec![0.0; 6]);
        assert_eq!(f.len(), 6);
        assert_eq!(f.bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "dims do not match")]
    fn bad_dims_panic() {
        let _ = Field::new("t", vec![2, 4], vec![0.0; 6]);
    }

    #[test]
    fn range_ignores_non_finite() {
        let f = Field::new("t", vec![3], vec![1.0, f32::NAN, -2.0]);
        assert_eq!(f.value_range(), (-2.0, 1.0));
    }
}
