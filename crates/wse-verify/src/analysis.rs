//! Static performance analysis over a [`MappingManifest`].
//!
//! Where [`crate::checks::verify`] answers *"is this mapping sound?"*, this
//! module answers *"how will it perform?"* — without running the simulator.
//! [`analyze`] abstractly interprets the declarative manifest and produces a
//! [`StaticProfile`] with four results, each a proven bound on what any
//! dynamic execution of the mapping can do:
//!
//! 1. **Per-link load** ([`LinkLoad`]): an *upper* bound on the wavelets,
//!    streams, and serialized occupancy crossing every directed fabric link,
//!    from a static hop walk of each declared stream's route. Contention is
//!    the number of distinct colors sharing the link.
//! 2. **Critical path** ([`StaticProfile::critical_path`]): a *lower* bound
//!    on the simulated makespan in integer [`Time`] ticks, from a
//!    supply-envelope propagation of [`CostModel`] costs along the send/recv
//!    dependency DAG (see *Soundness* below).
//! 3. **SRAM high-watermark** ([`SramWatermark`]): an *upper* bound on each
//!    PE's peak heap footprint — kernels allocate their declared buffers once
//!    and never free them, so the watermark is the summed
//!    [`BufferDecl`](crate::manifest::BufferDecl)
//!    bytes against the 48 KB budget.
//! 4. **Deadlock freedom** ([`DeadlockVerdict`]): a cycle check over the
//!    channel-dependency graph that upgrades the task-liveness heuristic
//!    into a proof, with a located counterexample cycle when it fails.
//!
//! # Soundness of the critical-path bound
//!
//! The dynamic timing semantics the bound is proven against (see
//! `wse-sim/src/shard.rs`): a task activated at `a` starts at
//! `max(a, busy_until)` and ends at `start + overhead + compute`; all its
//! sends leave the RAMP at `end`; each fabric hop advances the stream head by
//! one cycle and occupies the link for `n` cycles per `n`-wavelet stream; the
//! whole stream is delivered to the destination RAMP in one instant.
//!
//! For each consumer channel `(PE, color)` the analysis groups its
//! contributors into **serialization domains**: streams sharing their final
//! fabric link (which admits at most one wavelet per cycle), each local RAMP
//! loopback declaration, and each injection. Every domain `D` gets a sound
//! arrival envelope — no execution can deliver more than `envelope_D(t)`
//! wavelets of `D` by tick `t`:
//!
//! - *fabric* (rate 1/cycle): `min(W_D, (t − offset_D) / 1000)` with
//!   `offset_D` the minimum over members of `first_activation(producer)`
//!   plus overhead plus hops — a member's first wavelet cannot clear `hops`
//!   links before its producing task has even run, and the shared final link
//!   serializes the rest;
//! - *loopback* (step): `0` before `offset = start + words_per_send`, `W_D`
//!   after — a local delivery of `n` wavelets takes at least `n` cycles after
//!   the issuing task ends, but distinct streams need not serialize;
//! - *injection* (rate 1/cycle from the epoch): the block injector delivers
//!   cumulatively, so the `w`-th wavelet lands no earlier than cycle `w`.
//!
//! `earliest_supply(e)` — the first tick at which the summed envelopes reach
//! `e` wavelets — is then a lower bound on when `e` wavelets can have been
//! delivered, found by binary search (envelopes are monotone). First
//! activations propagate through the channel DAG in topological order:
//! a PE with a host entry activates at tick 0, otherwise no earlier than the
//! earliest first-completion bound among the channels it consumes. The final
//! makespan bound is the maximum over (a) per channel, the earliest full
//! supply of all expected wavelets plus one task overhead (the completion
//! activates a task whose end the simulator's finish instant dominates), and
//! (b) per PE, `first_activation + activations × overhead` (task runs on one
//! PE serialize and each charges at least the overhead). Arithmetic
//! saturates: an understated lower bound is still sound.
//!
//! When the channel graph is cyclic the propagation falls back to
//! `first_activation = 0` everywhere (still sound) and the cycle itself is
//! reported as a [`DeadlockVerdict::Cycle`].
//!
//! # Validation
//!
//! The bounds are cross-checked against the cycle-exact flight recorder for
//! every shipping strategy × shape: static link load ≥ recorded occupancy,
//! static critical path ≤ simulated makespan, static SRAM watermark ≥
//! recorded peak (`ceresz lint --analyze`, fuzzer oracle 6, and the
//! `analysis_soundness` integration suite).

use std::collections::{BTreeMap, BTreeSet};

use wse_sim::{Color, CostModel, PeId, Time, TICKS_PER_CYCLE};

use crate::checks::{effective_routes, loc, static_path, Loc};
use crate::diagnostic::{rank, CheckKind, Diagnostic};
use crate::manifest::MappingManifest;

/// Worst-case static load of one directed fabric link.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkLoad {
    /// Total wavelets crossing the link if every declared send fires.
    pub wavelets: u64,
    /// Total streams (individual sends) crossing the link.
    pub streams: u64,
    /// Distinct colors whose routes share the link, sorted.
    pub colors: Vec<u8>,
}

impl LinkLoad {
    /// Upper bound on the link's busy time: each wavelet occupies the link
    /// for one cycle, so total occupancy can never exceed this.
    #[must_use]
    pub fn occupancy_bound(&self) -> Time {
        Time::from_ticks(self.wavelets.saturating_mul(TICKS_PER_CYCLE))
    }

    /// Number of distinct colors contending for the link (1 = dedicated).
    #[must_use]
    pub fn contention(&self) -> usize {
        self.colors.len()
    }
}

/// Lower bounds on when one consumer channel `(PE, color)` can make progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelBound {
    /// The consuming PE.
    pub pe: PeId,
    /// The channel color.
    pub color: Color,
    /// Total wavelets the channel's declared receives consume.
    pub expected_wavelets: u64,
    /// Earliest tick any receive on the channel can complete (supply of the
    /// smallest declared extent). `None` when the channel can never fill —
    /// channel-completeness diagnoses that separately.
    pub first_completion: Option<Time>,
    /// Earliest tick all `expected_wavelets` can have been delivered.
    /// `None` when declared supply falls short of demand.
    pub full_supply: Option<Time>,
}

/// Static SRAM bound for one PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramWatermark {
    /// Summed declared buffer bytes — the high-watermark, since kernels
    /// allocate once at install time and never free.
    pub bytes: u64,
    /// The per-PE budget the mapping was declared against.
    pub budget: u64,
}

/// Outcome of the channel-dependency-graph deadlock check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockVerdict {
    /// The channel-dependency graph is acyclic. Together with clean
    /// channel-completeness and route-soundness checks this *proves* the
    /// mapping deadlock-free: by induction over the topological order, every
    /// channel's producers can always run to completion.
    Proven,
    /// A dependency cycle: each listed channel's supply waits on a task that
    /// the next channel's completion activates. The mapping may deadlock —
    /// reported as an error with this located counterexample.
    Cycle(Vec<(PeId, Color)>),
}

impl DeadlockVerdict {
    /// `true` iff deadlock freedom was proven.
    #[must_use]
    pub fn is_proven(&self) -> bool {
        matches!(self, DeadlockVerdict::Proven)
    }
}

/// The full result of statically analyzing one mapping: sound performance
/// bounds plus ranked diagnostics. This is the scoring surface the mapping
/// autotuner consumes per candidate — no simulation required.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticProfile {
    /// Name of the analyzed mapping.
    pub mapping: String,
    /// Mesh rows.
    pub rows: usize,
    /// Mesh columns.
    pub cols: usize,
    /// Worst-case load per directed link `(from, to)`, for every link some
    /// declared stream crosses.
    pub links: BTreeMap<(PeId, PeId), LinkLoad>,
    /// Per-channel supply bounds, sorted by `(PE, color)`.
    pub channels: Vec<ChannelBound>,
    /// Per-PE SRAM watermark, for every PE that declares buffers.
    pub sram: BTreeMap<PeId, SramWatermark>,
    /// Lower bound on the simulated makespan in ticks.
    pub critical_path: Time,
    /// Deadlock-freedom proof or located counterexample.
    pub deadlock: DeadlockVerdict,
    /// Analysis findings ranked most-severe-first ([`rank`]).
    pub diagnostics: Vec<Diagnostic>,
}

impl StaticProfile {
    /// The heaviest single-link load in wavelets (0 when nothing flows).
    #[must_use]
    pub fn max_link_wavelets(&self) -> u64 {
        self.links.values().map(|l| l.wavelets).max().unwrap_or(0)
    }

    /// Total wavelet-hops across the whole fabric.
    #[must_use]
    pub fn total_link_wavelets(&self) -> u64 {
        self.links
            .values()
            .fold(0u64, |acc, l| acc.saturating_add(l.wavelets))
    }

    /// The highest per-PE SRAM watermark in bytes (0 when no buffers).
    #[must_use]
    pub fn sram_watermark(&self) -> u64 {
        self.sram.values().map(|s| s.bytes).max().unwrap_or(0)
    }

    /// Static SRAM bound for `pe` (0 when it declares no buffers).
    #[must_use]
    pub fn sram_bound(&self, pe: PeId) -> u64 {
        self.sram.get(&pe).map_or(0, |s| s.bytes)
    }

    /// `true` iff the deadlock check proved the mapping deadlock-free.
    #[must_use]
    pub fn is_deadlock_free(&self) -> bool {
        self.deadlock.is_proven()
    }
}

/// How one serialization domain's wavelets can arrive over time.
#[derive(Debug, Clone, Copy)]
enum Envelope {
    /// At most one wavelet per cycle starting after `offset` ticks.
    Rate,
    /// Nothing before `offset` ticks, everything from then on.
    Step,
}

/// One serialization domain feeding a channel (see module docs).
#[derive(Debug, Clone, Copy)]
struct Domain {
    /// Earliest tick the first wavelet can land; `u64::MAX` = never.
    offset: u64,
    /// Total wavelets the domain can ever deliver.
    wavelets: u64,
    envelope: Envelope,
}

impl Domain {
    /// Upper bound on wavelets delivered by tick `t`.
    fn supplied_by(&self, t: u64) -> u64 {
        if t < self.offset {
            return 0;
        }
        match self.envelope {
            Envelope::Step => self.wavelets,
            Envelope::Rate => self.wavelets.min((t - self.offset) / TICKS_PER_CYCLE),
        }
    }

    /// Tick by which the whole domain is guaranteed representable as
    /// supplied (the binary-search upper bracket).
    fn full_by(&self) -> u64 {
        match self.envelope {
            Envelope::Step => self.offset,
            Envelope::Rate => self
                .offset
                .saturating_add(self.wavelets.saturating_mul(TICKS_PER_CYCLE)),
        }
    }
}

/// Earliest tick at which the summed domain envelopes reach `e` wavelets —
/// a lower bound on when `e` wavelets can have been delivered. `None` when
/// the finite-offset domains cannot supply `e` at any time.
fn earliest_supply(e: u64, domains: &[Domain]) -> Option<u64> {
    if e == 0 {
        return Some(0);
    }
    let live: Vec<&Domain> = domains.iter().filter(|d| d.offset != u64::MAX).collect();
    let total = live.iter().fold(0u64, |a, d| a.saturating_add(d.wavelets));
    if total < e {
        return None;
    }
    let supply = |t: u64| {
        live.iter()
            .fold(0u64, |a, d| a.saturating_add(d.supplied_by(t)))
    };
    let mut hi = live.iter().map(|d| d.full_by()).max().unwrap_or(0);
    if hi == u64::MAX {
        hi -= 1; // keep `mid + 1` below from wrapping; supply(MAX-1) = total
    }
    debug_assert!(supply(hi) >= e);
    let mut lo = 0u64;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if supply(mid) >= e {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

fn to_u64(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// One declared send with its statically-resolved path, or `None` when the
/// route is defective (those streams never flow; `verify` reports them).
struct ResolvedSend<'a> {
    send: &'a crate::manifest::SendDecl,
    /// Source-first, delivering PE last; `path.len() - 1` hops.
    path: &'a [PeId],
}

/// Run the static performance analysis over `manifest`, pricing task runs
/// with `cost` (use the same [`CostModel`] the simulator runs with — the
/// cross-check in `ceresz lint --analyze` assumes it).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze(manifest: &MappingManifest, cost: &CostModel) -> StaticProfile {
    let overhead = cost.task_overhead.ticks();
    let table = effective_routes(manifest);

    // Resolve each distinct send origin's path once.
    let mut paths: BTreeMap<Loc, Option<Vec<PeId>>> = BTreeMap::new();
    for s in &manifest.sends {
        paths
            .entry(loc(s.pe, s.color))
            .or_insert_with(|| static_path(manifest, &table, s.pe, s.color));
    }
    let resolved: Vec<ResolvedSend<'_>> = manifest
        .sends
        .iter()
        .filter(|s| s.sends > 0)
        .filter_map(|send| {
            let path = paths.get(&loc(send.pe, send.color))?.as_deref()?;
            Some(ResolvedSend { send, path })
        })
        .collect();

    // ---- (a) per-link worst-case load --------------------------------
    let mut links: BTreeMap<(PeId, PeId), LinkLoad> = BTreeMap::new();
    for r in &resolved {
        let wavelets = to_u64(r.send.words_per_send).saturating_mul(to_u64(r.send.sends));
        for hop in r.path.windows(2) {
            let load = links.entry((hop[0], hop[1])).or_default();
            load.wavelets = load.wavelets.saturating_add(wavelets);
            load.streams = load.streams.saturating_add(to_u64(r.send.sends));
            let c = r.send.color.id();
            if let Err(pos) = load.colors.binary_search(&c) {
                load.colors.insert(pos, c);
            }
        }
    }

    // ---- (d) channel-dependency graph + deadlock check ---------------
    // Nodes: consumer channels. Edge A -> K when a send contributing to K
    // originates at a PE that consumes A (conservative: the manifest does
    // not record which task issues a send, so any input channel of the
    // producing PE may gate it).
    let mut nodes: BTreeSet<Loc> = BTreeSet::new();
    let mut inputs_of_pe: BTreeMap<(usize, usize), BTreeSet<Loc>> = BTreeMap::new();
    for r in &manifest.recvs {
        if r.recvs > 0 {
            let k = loc(r.pe, r.color);
            nodes.insert(k);
            inputs_of_pe.entry(k.0).or_default().insert(k);
        }
    }
    let mut succs: BTreeMap<Loc, BTreeSet<Loc>> = BTreeMap::new();
    let mut preds: BTreeMap<Loc, BTreeSet<Loc>> = BTreeMap::new();
    for r in &resolved {
        let dest = *r.path.last().expect("static_path returns non-empty paths");
        let k = loc(dest, r.send.color);
        if !nodes.contains(&k) {
            continue; // orphan producer; channel-completeness reports it
        }
        if let Some(gates) = inputs_of_pe.get(&(r.send.pe.row, r.send.pe.col)) {
            for &a in gates {
                succs.entry(a).or_default().insert(k);
                preds.entry(k).or_default().insert(a);
            }
        }
    }
    let (topo, cycle) = topo_or_cycle(&nodes, &succs, &preds);

    // ---- (b) critical-path lower bound -------------------------------
    // First-activation bounds per PE, propagated in topological order; on a
    // cyclic graph fall back to 0 everywhere (still a sound lower bound).
    let mut entry_pes: BTreeSet<(usize, usize)> = BTreeSet::new();
    for e in &manifest.entries {
        entry_pes.insert((e.pe.row, e.pe.col));
    }
    let mut first_completion: BTreeMap<Loc, u64> = BTreeMap::new(); // MAX = never
    let first_act = |pe: (usize, usize),
                     completions: &BTreeMap<Loc, u64>,
                     inputs: &BTreeMap<(usize, usize), BTreeSet<Loc>>|
     -> u64 {
        if entry_pes.contains(&pe) {
            return 0;
        }
        inputs.get(&pe).map_or(u64::MAX, |chans| {
            chans
                .iter()
                .map(|k| completions.get(k).copied().unwrap_or(u64::MAX))
                .min()
                .unwrap_or(u64::MAX)
        })
    };

    // Per-channel demand, gathered once.
    let mut demand: BTreeMap<Loc, (u64, u64)> = BTreeMap::new(); // (min extent, total)
    for r in &manifest.recvs {
        if r.recvs == 0 {
            continue;
        }
        let e = demand.entry(loc(r.pe, r.color)).or_insert((u64::MAX, 0));
        e.0 = e.0.min(to_u64(r.extent));
        e.1 =
            e.1.saturating_add(to_u64(r.extent).saturating_mul(to_u64(r.recvs)));
    }

    let order: Vec<Loc> = if cycle.is_some() {
        nodes.iter().copied().collect()
    } else {
        topo
    };
    let mut channels: Vec<ChannelBound> = Vec::with_capacity(order.len());
    let mut full_supplies: Vec<(Loc, Option<u64>)> = Vec::new();
    for k in order {
        let domains = channel_domains(
            k,
            &resolved,
            manifest,
            overhead,
            cycle.is_some(),
            &first_completion,
            &inputs_of_pe,
            &entry_pes,
        );
        let (e_min, e_total) = demand.get(&k).copied().unwrap_or((0, 0));
        let first = earliest_supply(e_min, &domains);
        let full = earliest_supply(e_total, &domains);
        first_completion.insert(k, first.unwrap_or(u64::MAX));
        full_supplies.push((k, full));
        channels.push(ChannelBound {
            pe: PeId::new(k.0 .0, k.0 .1),
            color: Color::new(k.1),
            expected_wavelets: e_total,
            first_completion: first.map(Time::from_ticks),
            full_supply: full.map(Time::from_ticks),
        });
    }
    channels.sort_by_key(|c| loc(c.pe, c.color));

    let mut critical = 0u64;
    // (b-i) per channel: the final receive's completion activates a task
    // whose end — at least one overhead later — the finish instant dominates.
    for (_, full) in &full_supplies {
        if let Some(t) = full {
            critical = critical.max(t.saturating_add(overhead));
        }
    }
    // (b-ii) per PE: task runs serialize and each charges >= the overhead.
    let mut acts_per_pe: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for e in &manifest.entries {
        let n = acts_per_pe.entry((e.pe.row, e.pe.col)).or_default();
        *n = n.saturating_add(1);
    }
    for r in &manifest.recvs {
        let n = acts_per_pe.entry((r.pe.row, r.pe.col)).or_default();
        *n = n.saturating_add(to_u64(r.recvs));
    }
    for s in &manifest.sends {
        if s.activates.is_some() {
            let n = acts_per_pe.entry((s.pe.row, s.pe.col)).or_default();
            *n = n.saturating_add(to_u64(s.sends));
        }
    }
    for (&pe, &n) in &acts_per_pe {
        if n == 0 {
            continue;
        }
        let act = if cycle.is_some() {
            0
        } else {
            first_act(pe, &first_completion, &inputs_of_pe)
        };
        if act != u64::MAX {
            critical = critical.max(act.saturating_add(n.saturating_mul(overhead)));
        }
    }
    let critical_path = Time::from_ticks(critical);

    // ---- (c) per-PE SRAM watermark -----------------------------------
    let mut sram: BTreeMap<PeId, SramWatermark> = BTreeMap::new();
    for b in &manifest.buffers {
        let w = sram.entry(b.pe).or_insert(SramWatermark {
            bytes: 0,
            budget: to_u64(manifest.sram_bytes),
        });
        w.bytes = w.bytes.saturating_add(to_u64(b.bytes));
    }

    // ---- diagnostics, ranked by predicted severity -------------------
    let mut diagnostics = Vec::new();
    let deadlock = match cycle {
        Some(cyc) => {
            let named: Vec<String> = cyc
                .iter()
                .map(|&((r, c), col)| format!("{} {}", PeId::new(r, c), Color::new(col)))
                .collect();
            let head = cyc[0];
            diagnostics.push(
                Diagnostic::error(
                    CheckKind::DeadlockFreedom,
                    format!(
                        "channel-dependency cycle: {} — each channel's supply waits on a \
                         task its successor's completion activates",
                        named.join(" -> "),
                    ),
                )
                .at_pe(PeId::new(head.0 .0, head.0 .1))
                .on_color(Color::new(head.1))
                .with_hint("break the cycle with a host entry activation or re-stage the exchange"),
            );
            DeadlockVerdict::Cycle(
                cyc.into_iter()
                    .map(|((r, c), col)| (PeId::new(r, c), Color::new(col)))
                    .collect(),
            )
        }
        None => DeadlockVerdict::Proven,
    };
    // Contended links are only worth flagging when their serialized load
    // alone exceeds the whole-mapping critical path: those are the links the
    // analysis predicts to be the bottleneck.
    let mut hot: Vec<(&(PeId, PeId), &LinkLoad)> = links
        .iter()
        .filter(|(_, l)| l.contention() > 1 && l.occupancy_bound() > critical_path)
        .collect();
    hot.sort_by(|a, b| b.1.wavelets.cmp(&a.1.wavelets).then(a.0.cmp(b.0)));
    for (&(from, to), load) in hot {
        diagnostics.push(
            Diagnostic::warning(
                CheckKind::LinkContention,
                format!(
                    "link {from} -> {to} serializes {} streams on {} colors; worst-case \
                     {} wavelets make it the predicted bottleneck",
                    load.streams,
                    load.contention(),
                    load.wavelets,
                ),
            )
            .at_pe(from)
            .with_hint("route the colors over disjoint links or rebalance the stages"),
        );
    }
    rank(&mut diagnostics);

    StaticProfile {
        mapping: manifest.name.clone(),
        rows: manifest.rows,
        cols: manifest.cols,
        links,
        channels,
        sram,
        critical_path,
        deadlock,
        diagnostics,
    }
}

/// Build the serialization domains feeding channel `k`.
#[allow(clippy::too_many_arguments)]
fn channel_domains(
    k: Loc,
    resolved: &[ResolvedSend<'_>],
    manifest: &MappingManifest,
    overhead: u64,
    cyclic: bool,
    first_completion: &BTreeMap<Loc, u64>,
    inputs_of_pe: &BTreeMap<(usize, usize), BTreeSet<Loc>>,
    entry_pes: &BTreeSet<(usize, usize)>,
) -> Vec<Domain> {
    // Earliest any task on `pe` can start running (activation + overhead
    // puts its *end* — and thus its sends — one overhead later still, which
    // start_of accounts for by itself being the earliest possible end).
    let start_of = |pe: PeId| -> u64 {
        let key = (pe.row, pe.col);
        let act = if entry_pes.contains(&key) {
            0
        } else if let Some(chans) = inputs_of_pe.get(&key) {
            if cyclic {
                0 // no topological order to propagate through; 0 stays sound
            } else {
                chans
                    .iter()
                    .map(|c| first_completion.get(c).copied().unwrap_or(u64::MAX))
                    .min()
                    .unwrap_or(u64::MAX)
            }
        } else {
            u64::MAX // no entry and no input: the PE can never run a task
        };
        if act == u64::MAX {
            u64::MAX
        } else {
            act.saturating_add(overhead)
        }
    };
    // Fabric streams group by final link; every loopback declaration and
    // every injection is its own domain.
    let mut rate: BTreeMap<(PeId, PeId), Domain> = BTreeMap::new();
    let mut out: Vec<Domain> = Vec::new();
    for r in resolved {
        let dest = *r.path.last().expect("paths are non-empty");
        if loc(dest, r.send.color) != k {
            continue;
        }
        let wavelets = to_u64(r.send.words_per_send).saturating_mul(to_u64(r.send.sends));
        if wavelets == 0 {
            continue;
        }
        let start = start_of(r.send.pe);
        let hops = to_u64(r.path.len() - 1);
        if hops == 0 {
            // Local RAMP loopback: delivered whole, >= n cycles after the
            // issuing task's end; distinct streams need not serialize.
            let offset = if start == u64::MAX {
                u64::MAX
            } else {
                start.saturating_add(to_u64(r.send.words_per_send).saturating_mul(TICKS_PER_CYCLE))
            };
            out.push(Domain {
                offset,
                wavelets,
                envelope: Envelope::Step,
            });
        } else {
            let offset = if start == u64::MAX {
                u64::MAX
            } else {
                start.saturating_add(hops.saturating_mul(TICKS_PER_CYCLE))
            };
            let final_link = (r.path[r.path.len() - 2], dest);
            let d = rate.entry(final_link).or_insert(Domain {
                offset: u64::MAX,
                wavelets: 0,
                envelope: Envelope::Rate,
            });
            d.offset = d.offset.min(offset);
            d.wavelets = d.wavelets.saturating_add(wavelets);
        }
    }
    for inj in &manifest.injections {
        if loc(inj.pe, inj.color) != k || inj.words == 0 {
            continue;
        }
        out.push(Domain {
            offset: 0,
            wavelets: to_u64(inj.words),
            envelope: Envelope::Rate,
        });
    }
    out.extend(rate.into_values());
    out
}

/// Kahn's algorithm over the channel graph. Returns the topological order
/// when acyclic, or a located cycle (forward direction, deterministic)
/// otherwise.
fn topo_or_cycle(
    nodes: &BTreeSet<Loc>,
    succs: &BTreeMap<Loc, BTreeSet<Loc>>,
    preds: &BTreeMap<Loc, BTreeSet<Loc>>,
) -> (Vec<Loc>, Option<Vec<Loc>>) {
    let mut indeg: BTreeMap<Loc, usize> = nodes
        .iter()
        .map(|&n| (n, preds.get(&n).map_or(0, BTreeSet::len)))
        .collect();
    let mut ready: BTreeSet<Loc> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut topo = Vec::with_capacity(nodes.len());
    while let Some(&n) = ready.iter().next() {
        ready.remove(&n);
        topo.push(n);
        if let Some(out) = succs.get(&n) {
            for &m in out {
                let d = indeg.get_mut(&m).expect("edges stay within the node set");
                *d -= 1;
                if *d == 0 {
                    ready.insert(m);
                }
            }
        }
    }
    if topo.len() == nodes.len() {
        return (topo, None);
    }
    // Every leftover node keeps a leftover predecessor; walking predecessors
    // from the smallest leftover node must revisit one, closing a cycle.
    let leftover: BTreeSet<Loc> = {
        let done: BTreeSet<Loc> = topo.iter().copied().collect();
        nodes
            .iter()
            .copied()
            .filter(|n| !done.contains(n))
            .collect()
    };
    let mut walk: Vec<Loc> = Vec::new();
    let mut seen: BTreeSet<Loc> = BTreeSet::new();
    let mut cur = *leftover.iter().next().expect("leftover set is non-empty");
    loop {
        if !seen.insert(cur) {
            let pos = walk.iter().position(|&n| n == cur).unwrap_or(0);
            let mut cycle: Vec<Loc> = walk[pos..].to_vec();
            cycle.reverse(); // pred-walk order -> forward dependency order
            return (topo, Some(cycle));
        }
        walk.push(cur);
        cur = *preds
            .get(&cur)
            .into_iter()
            .flat_map(|s| s.iter())
            .find(|p| leftover.contains(p))
            .expect("leftover nodes keep a leftover predecessor");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::MappingManifest;
    use wse_sim::{Direction, RouteRule, TaskId};

    fn rule(input: Option<Direction>, outputs: &[Direction]) -> RouteRule {
        RouteRule {
            input,
            outputs: outputs.to_vec(),
        }
    }

    const C0: Color = Color::new(0);
    const C1: Color = Color::new(1);
    const T1: TaskId = TaskId(1);
    const T9: TaskId = TaskId(9);

    /// PE(0,0) streams east to PE(0,1): 8 sends x 4 wavelets.
    fn two_pe_pipeline() -> MappingManifest {
        let mut m = MappingManifest::new("two-pe", 1, 2);
        let a = PeId::new(0, 0);
        let b = PeId::new(0, 1);
        m.route(a, C0, rule(None, &[Direction::East]));
        m.route(b, C0, rule(Some(Direction::West), &[Direction::Ramp]));
        m.declare_send(a, C0, 4, 8, None);
        m.declare_recv(b, C0, 4, 8, T1);
        m.declare_task(a, T9);
        m.declare_task(b, T1);
        m.declare_entry(a, T9);
        m
    }

    #[test]
    fn link_load_counts_every_declared_wavelet() {
        let profile = analyze(&two_pe_pipeline(), &CostModel::unit());
        let link = &profile.links[&(PeId::new(0, 0), PeId::new(0, 1))];
        assert_eq!(link.wavelets, 32);
        assert_eq!(link.streams, 8);
        assert_eq!(link.colors, vec![0]);
        assert_eq!(link.contention(), 1);
        assert_eq!(link.occupancy_bound(), Time::from_cycles(32));
        assert_eq!(profile.max_link_wavelets(), 32);
        assert_eq!(profile.total_link_wavelets(), 32);
    }

    #[test]
    fn critical_path_tracks_the_supply_envelope() {
        // Unit cost model: overhead = 1 cycle. Entry task on PE(0,0) can end
        // no earlier than cycle 1, first wavelet needs 1 hop => offset 2.
        // 32 wavelets serialize on the final link => full supply at cycle 34,
        // plus the consuming task's overhead => 35 cycles.
        let profile = analyze(&two_pe_pipeline(), &CostModel::unit());
        assert_eq!(profile.critical_path, Time::from_cycles(35));
        let ch = &profile.channels[0];
        assert_eq!((ch.pe, ch.color), (PeId::new(0, 1), C0));
        assert_eq!(ch.expected_wavelets, 32);
        // First completion: 4 wavelets past offset 2 => cycle 6.
        assert_eq!(ch.first_completion, Some(Time::from_cycles(6)));
        assert_eq!(ch.full_supply, Some(Time::from_cycles(34)));
        assert!(profile.is_deadlock_free());
    }

    #[test]
    fn injection_supplies_from_the_epoch() {
        let mut m = MappingManifest::new("inject", 1, 1);
        let a = PeId::new(0, 0);
        m.declare_injection(a, C0, 16);
        m.declare_recv(a, C0, 16, 1, T1);
        m.declare_task(a, T1);
        let profile = analyze(&m, &CostModel::unit());
        let ch = &profile.channels[0];
        // 16 wavelets at 1/cycle from the epoch, + 1 cycle task overhead.
        assert_eq!(ch.first_completion, Some(Time::from_cycles(16)));
        assert_eq!(profile.critical_path, Time::from_cycles(17));
        assert!(profile.is_deadlock_free());
    }

    #[test]
    fn loopback_streams_do_not_serialize() {
        let mut m = MappingManifest::new("loop", 1, 1);
        let a = PeId::new(0, 0);
        m.route(a, C0, rule(None, &[Direction::Ramp]));
        m.declare_send(a, C0, 4, 2, None);
        m.declare_recv(a, C0, 4, 2, T1);
        m.declare_task(a, T1);
        m.declare_task(a, T9);
        m.declare_entry(a, T9);
        let profile = analyze(&m, &CostModel::unit());
        let ch = &profile.channels[0];
        // Both 4-wavelet loopback streams may land together at end + 4:
        // start >= 1, + 4 cycles => full supply at 5, not 1 + 8.
        assert_eq!(ch.full_supply, Some(Time::from_cycles(5)));
        assert!(profile.links.is_empty(), "loopback crosses no fabric link");
    }

    #[test]
    fn deadlocked_exchange_yields_a_located_cycle() {
        // A consumes c0 (fed by B), B consumes c1 (fed by A); no entry
        // anywhere. Task liveness passes (each task has an activating recv),
        // channel accounting balances — only the dependency-cycle check can
        // see that nothing ever starts.
        let mut m = MappingManifest::new("deadlock", 1, 2);
        let a = PeId::new(0, 0);
        let b = PeId::new(0, 1);
        m.route(a, C1, rule(None, &[Direction::East]));
        m.route(b, C1, rule(Some(Direction::West), &[Direction::Ramp]));
        m.route(b, C0, rule(None, &[Direction::West]));
        m.route(a, C0, rule(Some(Direction::East), &[Direction::Ramp]));
        m.declare_send(a, C1, 4, 1, None);
        m.declare_recv(b, C1, 4, 1, T1);
        m.declare_task(b, T1);
        m.declare_send(b, C0, 4, 1, None);
        m.declare_recv(a, C0, 4, 1, T1);
        m.declare_task(a, T1);
        let profile = analyze(&m, &CostModel::unit());
        let DeadlockVerdict::Cycle(cycle) = &profile.deadlock else {
            panic!("expected a located cycle, got {:?}", profile.deadlock);
        };
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&(a, C0)));
        assert!(cycle.contains(&(b, C1)));
        let diag = &profile.diagnostics[0];
        assert_eq!(diag.check, CheckKind::DeadlockFreedom);
        assert!(diag.message.contains("channel-dependency cycle"), "{diag}");
        // The liveness heuristic alone accepts this mapping.
        let report = crate::checks::verify(&m);
        assert!(
            report.is_clean(),
            "the five base checks miss the deadlock: {report}"
        );
    }

    #[test]
    fn sram_watermark_sums_declared_buffers() {
        let mut m = MappingManifest::new("sram", 1, 1);
        let a = PeId::new(0, 0);
        m.declare_buffer(a, 1024, "block");
        m.declare_buffer(a, 512, "scratch");
        let profile = analyze(&m, &CostModel::unit());
        assert_eq!(profile.sram_bound(a), 1536);
        assert_eq!(profile.sram_watermark(), 1536);
        assert_eq!(profile.sram[&a].budget, 48 * 1024);
        assert_eq!(profile.sram_bound(PeId::new(0, 1)), 0);
    }

    #[test]
    fn contended_bottleneck_link_is_flagged() {
        // Two colors funnel through the same final link into PE(0,2), with
        // enough wavelets that the link bound exceeds the critical path.
        let mut m = MappingManifest::new("contended", 1, 3);
        let a = PeId::new(0, 0);
        let b = PeId::new(0, 1);
        let c = PeId::new(0, 2);
        for (color, src) in [(C0, a), (C1, b)] {
            for col in src.col..2 {
                let pe = PeId::new(0, col);
                let input = (col > src.col).then_some(Direction::West);
                m.route(pe, color, rule(input, &[Direction::East]));
            }
            let input = Some(Direction::West);
            m.route(c, color, rule(input, &[Direction::Ramp]));
            m.declare_send(src, color, 64, 4, None);
            m.declare_recv(c, color, 64, 4, T1);
        }
        m.declare_task(c, T1);
        m.declare_task(a, T9);
        m.declare_task(b, T9);
        m.declare_entry(a, T9);
        m.declare_entry(b, T9);
        let profile = analyze(&m, &CostModel::unit());
        let shared = &profile.links[&(b, c)];
        assert_eq!(shared.contention(), 2);
        assert_eq!(shared.wavelets, 512);
        assert!(
            profile
                .diagnostics
                .iter()
                .any(|d| d.check == CheckKind::LinkContention),
            "expected a contention warning: {:?}",
            profile.diagnostics
        );
    }

    #[test]
    fn earliest_supply_is_monotone_and_exact() {
        let domains = [
            Domain {
                offset: 2_000,
                wavelets: 4,
                envelope: Envelope::Rate,
            },
            Domain {
                offset: 0,
                wavelets: 2,
                envelope: Envelope::Rate,
            },
        ];
        assert_eq!(earliest_supply(0, &domains), Some(0));
        assert_eq!(earliest_supply(1, &domains), Some(1_000));
        assert_eq!(earliest_supply(2, &domains), Some(2_000));
        // Third wavelet: second domain is drained, first opens after 2 cyc.
        assert_eq!(earliest_supply(3, &domains), Some(3_000));
        assert_eq!(earliest_supply(6, &domains), Some(6_000));
        assert_eq!(earliest_supply(7, &domains), None);
    }
}
