//! The five static checks and the verification report.
//!
//! All checks are pure functions of the [`MappingManifest`]; iteration
//! orders are deterministic (declaration order, or sorted by `(PE, color)`)
//! so repeated verification of the same mapping yields byte-identical
//! reports.

use std::collections::{BTreeMap, BTreeSet};

use wse_sim::{Color, Direction, PeId, RouteRule, TaskId, MAX_COLORS};

use crate::diagnostic::{CheckKind, Diagnostic, Severity};
use crate::manifest::MappingManifest;

/// Everything the verifier found for one manifest.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All findings, in check order (route soundness, color discipline,
    /// channel completeness, SRAM budget, task liveness).
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Findings with [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// True when no *error* was found (warnings do not fail a mapping).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Number of error findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warnings().count()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Sort key for deterministic per-PE/color maps.
pub(crate) type Loc = ((usize, usize), u8);

pub(crate) fn loc(pe: PeId, color: Color) -> Loc {
    ((pe.row, pe.col), color.id())
}

/// Run all five checks over `manifest`.
#[must_use]
pub fn verify(manifest: &MappingManifest) -> VerifyReport {
    let mut diags = Vec::new();
    // The effective routing table: first claim wins, matching the dynamic
    // fabric where `ceresz-wse` never intentionally re-claims a pair.
    let table = effective_routes(manifest);
    check_route_soundness(manifest, &table, &mut diags);
    check_color_discipline(manifest, &mut diags);
    check_channel_completeness(manifest, &table, &mut diags);
    check_sram_budget(manifest, &mut diags);
    check_task_liveness(manifest, &mut diags);
    VerifyReport { diagnostics: diags }
}

/// Collapse route declarations to one rule per `(PE, color)` (first claim
/// wins). Conflicting duplicates are reported by the color-discipline check.
pub(crate) fn effective_routes(manifest: &MappingManifest) -> BTreeMap<Loc, &RouteRule> {
    let mut table = BTreeMap::new();
    for r in &manifest.routes {
        table.entry(loc(r.pe, r.color)).or_insert(&r.rule);
    }
    table
}

/// Where a statically-resolved stream ends up.
fn resolve_static(
    manifest: &MappingManifest,
    table: &BTreeMap<Loc, &RouteRule>,
    src: PeId,
    color: Color,
    diags: &mut Vec<Diagnostic>,
) -> Option<PeId> {
    let mut cur = src;
    let mut arrived_from: Option<Direction> = None;
    let mut visited: BTreeSet<((usize, usize), Option<Direction>)> = BTreeSet::new();
    loop {
        if !visited.insert(((cur.row, cur.col), arrived_from)) {
            diags.push(
                Diagnostic::error(
                    CheckKind::RouteSoundness,
                    format!(
                        "route cycles without reaching a RAMP (cycle through {})",
                        join_pes(visited.iter().map(|&((r, c), _)| PeId::new(r, c))),
                    ),
                )
                .at_pe(src)
                .on_color(color)
                .with_hint("one PE on the cycle must output to Ramp to deliver the stream"),
            );
            return None;
        }
        let Some(rule) = table.get(&loc(cur, color)) else {
            diags.push(
                Diagnostic::error(
                    CheckKind::RouteSoundness,
                    format!("stream from {src} needs a routing rule here, but none is installed"),
                )
                .at_pe(cur)
                .on_color(color)
                .with_hint("install a rule with Simulator::route before injecting on this color"),
            );
            return None;
        };
        if rule.input != arrived_from {
            diags.push(
                Diagnostic::error(
                    CheckKind::RouteSoundness,
                    format!(
                        "stream from {src} arrives from {:?} but the rule accepts {:?}",
                        arrived_from, rule.input
                    ),
                )
                .at_pe(cur)
                .on_color(color)
                .with_hint("the rule's input direction must match the upstream hop"),
            );
            return None;
        }
        if rule.outputs.contains(&Direction::Ramp) {
            return Some(cur);
        }
        let mut out_dirs = rule.outputs.iter().filter(|&&d| d != Direction::Ramp);
        let Some(&dir) = out_dirs.next() else {
            diags.push(
                Diagnostic::error(
                    CheckKind::RouteSoundness,
                    format!("rule on the path from {src} has no output direction"),
                )
                .at_pe(cur)
                .on_color(color)
                .with_hint("add an output direction or Ramp to the rule"),
            );
            return None;
        };
        if out_dirs.next().is_some() {
            diags.push(
                Diagnostic::error(
                    CheckKind::RouteSoundness,
                    format!("rule on the path from {src} is multicast (several non-RAMP outputs)"),
                )
                .at_pe(cur)
                .on_color(color)
                .with_hint("the simulator streams are unicast; relay explicitly instead"),
            );
            return None;
        }
        let Some(next) = cur.neighbor(dir, manifest.rows, manifest.cols) else {
            diags.push(
                Diagnostic::error(
                    CheckKind::RouteSoundness,
                    format!(
                        "rule outputs {dir:?} off the {}x{} mesh",
                        manifest.rows, manifest.cols
                    ),
                )
                .at_pe(cur)
                .on_color(color)
                .with_hint("shrink the route or grow the mesh shape"),
            );
            return None;
        };
        arrived_from = Some(dir.opposite());
        cur = next;
    }
}

/// Silent hop-by-hop walk of `src`'s stream on `color`.
///
/// Returns the full PE path — source first, delivering (RAMP) PE last — when
/// the route is sound, or `None` on any defect ([`resolve_static`] diagnoses
/// the defects themselves). The hop count of the path is `len() - 1`; a
/// single-element path is a local RAMP loopback. Used by the static
/// performance analysis, which needs every link a stream crosses rather than
/// just its destination.
pub(crate) fn static_path(
    manifest: &MappingManifest,
    table: &BTreeMap<Loc, &RouteRule>,
    src: PeId,
    color: Color,
) -> Option<Vec<PeId>> {
    let mut path = Vec::new();
    let mut cur = src;
    let mut arrived_from: Option<Direction> = None;
    let mut visited: BTreeSet<((usize, usize), Option<Direction>)> = BTreeSet::new();
    loop {
        if !visited.insert(((cur.row, cur.col), arrived_from)) {
            return None; // ramp-less routing cycle
        }
        let rule = table.get(&loc(cur, color))?;
        if rule.input != arrived_from {
            return None;
        }
        path.push(cur);
        if rule.outputs.contains(&Direction::Ramp) {
            return Some(path);
        }
        let mut out_dirs = rule.outputs.iter().filter(|&&d| d != Direction::Ramp);
        let &dir = out_dirs.next()?;
        if out_dirs.next().is_some() {
            return None; // multicast
        }
        let next = cur.neighbor(dir, manifest.rows, manifest.cols)?;
        arrived_from = Some(dir.opposite());
        cur = next;
    }
}

fn join_pes(pes: impl Iterator<Item = PeId>) -> String {
    let mut s = String::new();
    for (i, pe) in pes.enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&pe.to_string());
    }
    s
}

/// Check 1 — route soundness: every declared sender's stream resolves
/// on-mesh to a RAMP with no ramp-less cycle, and every rule references
/// on-mesh PEs.
fn check_route_soundness(
    manifest: &MappingManifest,
    table: &BTreeMap<Loc, &RouteRule>,
    diags: &mut Vec<Diagnostic>,
) {
    for r in &manifest.routes {
        if r.pe.row >= manifest.rows || r.pe.col >= manifest.cols {
            diags.push(
                Diagnostic::error(
                    CheckKind::RouteSoundness,
                    format!(
                        "rule installed outside the {}x{} mesh",
                        manifest.rows, manifest.cols
                    ),
                )
                .at_pe(r.pe)
                .on_color(r.color),
            );
        }
    }
    let mut seen_origins: BTreeSet<Loc> = BTreeSet::new();
    for s in &manifest.sends {
        if s.sends == 0 || !seen_origins.insert(loc(s.pe, s.color)) {
            continue; // nothing flows, or this origin already resolved
        }
        let _ = resolve_static(manifest, table, s.pe, s.color, diags);
    }
    check_rampless_cycles(manifest, table, diags);
    // Origin rules (input = None, not a local loopback) that no declared
    // sender uses: suspicious — likely a missing declaration.
    for (&((row, col), c), rule) in table {
        let pe = PeId::new(row, col);
        let color = Color::new(c);
        if rule.input.is_none()
            && !rule.outputs.contains(&Direction::Ramp)
            && !seen_origins.contains(&loc(pe, color))
        {
            diags.push(
                Diagnostic::warning(
                    CheckKind::RouteSoundness,
                    "route origin installed but no sender is declared for it".to_string(),
                )
                .at_pe(pe)
                .on_color(color)
                .with_hint("declare the send in the manifest or remove the dead route"),
            );
        }
    }
}

/// Detect ramp-less cycles in the per-color successor graph of the routing
/// tables themselves, independent of any declared sender.
///
/// A rule's successor is the neighbor its single non-RAMP output points at,
/// provided that neighbor's rule accepts the stream (input = opposite
/// direction). Rules that output to RAMP deliver and have no successor. A
/// cycle in this graph is a set of rules that forward to each other forever
/// without delivering — data entering it is lost and its sender's
/// downstream receives deadlock, so it is an error even when no declared
/// sender currently feeds it.
fn check_rampless_cycles(
    manifest: &MappingManifest,
    table: &BTreeMap<Loc, &RouteRule>,
    diags: &mut Vec<Diagnostic>,
) {
    let successor = |pe: PeId, color: Color| -> Option<PeId> {
        let rule = table.get(&loc(pe, color))?;
        if rule.outputs.contains(&Direction::Ramp) {
            return None;
        }
        let mut dirs = rule.outputs.iter().filter(|&&d| d != Direction::Ramp);
        let dir = *dirs.next()?;
        if dirs.next().is_some() {
            return None; // multicast is reported by the path walk
        }
        let next = pe.neighbor(dir, manifest.rows, manifest.cols)?;
        let next_rule = table.get(&loc(next, color))?;
        (next_rule.input == Some(dir.opposite())).then_some(next)
    };
    let mut colors: Vec<u8> = table.keys().map(|&(_, c)| c).collect();
    colors.sort_unstable();
    colors.dedup();
    for c in colors {
        let color = Color::new(c);
        let mut done: BTreeSet<(usize, usize)> = BTreeSet::new();
        let nodes: Vec<PeId> = table
            .keys()
            .filter(|&&(_, kc)| kc == c)
            .map(|&((r, col), _)| PeId::new(r, col))
            .collect();
        for &start in &nodes {
            if done.contains(&(start.row, start.col)) {
                continue;
            }
            let mut path: Vec<PeId> = Vec::new();
            let mut on_path: BTreeSet<(usize, usize)> = BTreeSet::new();
            let mut cur = start;
            loop {
                if done.contains(&(cur.row, cur.col)) {
                    break;
                }
                if !on_path.insert((cur.row, cur.col)) {
                    let pos = path.iter().position(|&p| p == cur).unwrap_or(0);
                    let cycle = &path[pos..];
                    diags.push(
                        Diagnostic::error(
                            CheckKind::RouteSoundness,
                            format!(
                                "ramp-less cycle: {} forward to each other forever without delivering",
                                join_pes(cycle.iter().copied()),
                            ),
                        )
                        .at_pe(cycle[0])
                        .on_color(color)
                        .with_hint("one PE on the cycle must output to Ramp"),
                    );
                    break;
                }
                path.push(cur);
                match successor(cur, color) {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            for p in path {
                done.insert((p.row, p.col));
            }
        }
    }
}

/// Check 2 — color discipline: ≤ 24 colors live per PE, and no two rules on
/// one PE claim the same color with different directions.
fn check_color_discipline(manifest: &MappingManifest, diags: &mut Vec<Diagnostic>) {
    let mut claims: BTreeMap<Loc, Vec<&RouteRule>> = BTreeMap::new();
    for r in &manifest.routes {
        claims.entry(loc(r.pe, r.color)).or_default().push(&r.rule);
    }
    for (&((row, col), c), rules) in &claims {
        let pe = PeId::new(row, col);
        let color = Color::new(c);
        if rules.len() > 1 {
            if rules.iter().any(|r| **r != *rules[0]) {
                diags.push(
                    Diagnostic::error(
                        CheckKind::ColorDiscipline,
                        format!(
                            "{} rules claim this color/direction pair with conflicting \
                             directions; the fabric keeps only the last installed",
                            rules.len()
                        ),
                    )
                    .at_pe(pe)
                    .on_color(color)
                    .with_hint("give each logical channel through this PE its own color"),
                );
            } else {
                diags.push(
                    Diagnostic::warning(
                        CheckKind::ColorDiscipline,
                        format!("identical rule installed {} times", rules.len()),
                    )
                    .at_pe(pe)
                    .on_color(color),
                );
            }
        }
    }
    let mut per_pe: BTreeMap<(usize, usize), BTreeSet<u8>> = BTreeMap::new();
    for &(pe, c) in claims.keys() {
        per_pe.entry(pe).or_default().insert(c);
    }
    for ((row, col), colors) in per_pe {
        if colors.len() > MAX_COLORS as usize {
            diags.push(
                Diagnostic::error(
                    CheckKind::ColorDiscipline,
                    format!(
                        "{} colors live on one PE; the CS-2 fabric has {MAX_COLORS}",
                        colors.len()
                    ),
                )
                .at_pe(PeId::new(row, col)),
            );
        }
    }
}

/// Check 3 — channel completeness: every declared receive has a producer
/// whose wavelets actually reach it, and every producer has a consumer;
/// totals must balance (a shortfall is a static deadlock).
fn check_channel_completeness(
    manifest: &MappingManifest,
    table: &BTreeMap<Loc, &RouteRule>,
    diags: &mut Vec<Diagnostic>,
) {
    // Total wavelets delivered at each (PE, color).
    let mut delivered: BTreeMap<Loc, usize> = BTreeMap::new();
    for inj in &manifest.injections {
        *delivered.entry(loc(inj.pe, inj.color)).or_default() += inj.words;
    }
    let mut scratch = Vec::new(); // route errors are already reported by check 1
    for s in &manifest.sends {
        if s.sends == 0 {
            continue;
        }
        if let Some(dest) = resolve_static(manifest, table, s.pe, s.color, &mut scratch) {
            *delivered.entry(loc(dest, s.color)).or_default() += s.words_per_send * s.sends;
        }
    }
    // Total wavelets each (PE, color) expects to consume.
    let mut expected: BTreeMap<Loc, usize> = BTreeMap::new();
    for r in &manifest.recvs {
        *expected.entry(loc(r.pe, r.color)).or_default() += r.extent * r.recvs;
    }
    for (&((row, col), c), &want) in &expected {
        let pe = PeId::new(row, col);
        let color = Color::new(c);
        let got = delivered.get(&((row, col), c)).copied().unwrap_or(0);
        if got == 0 && want > 0 {
            diags.push(
                Diagnostic::error(
                    CheckKind::ChannelCompleteness,
                    format!("orphan receiver: expects {want} wavelet(s) but no upstream sender or injection delivers here"),
                )
                .at_pe(pe)
                .on_color(color)
                .with_hint("declare the matching sender, or drop the receive"),
            );
        } else if got < want {
            diags.push(
                Diagnostic::error(
                    CheckKind::ChannelCompleteness,
                    format!(
                        "channel under-supplied: {got} wavelet(s) delivered but {want} expected — the final receive can never complete (deadlock)"
                    ),
                )
                .at_pe(pe)
                .on_color(color)
                .with_hint("balance the sender's send count/extent with the receiver's"),
            );
        } else if got > want {
            diags.push(
                Diagnostic::warning(
                    CheckKind::ChannelCompleteness,
                    format!(
                        "channel over-supplied: {got} wavelet(s) delivered but only {want} consumed; the rest sit in the inbox"
                    ),
                )
                .at_pe(pe)
                .on_color(color),
            );
        }
    }
    for (&((row, col), c), &got) in &delivered {
        if got > 0 && !expected.contains_key(&((row, col), c)) {
            diags.push(
                Diagnostic::error(
                    CheckKind::ChannelCompleteness,
                    format!(
                        "orphan producer: {got} wavelet(s) delivered here but no receive is ever posted"
                    ),
                )
                .at_pe(PeId::new(row, col))
                .on_color(Color::new(c))
                .with_hint("post a receive on this color, or remove the sender"),
            );
        }
    }
}

/// Check 4 — SRAM budget: the summed declared reservations of each PE must
/// fit the per-PE capacity.
fn check_sram_budget(manifest: &MappingManifest, diags: &mut Vec<Diagnostic>) {
    let mut per_pe: BTreeMap<(usize, usize), (usize, Vec<&str>)> = BTreeMap::new();
    for b in &manifest.buffers {
        let e = per_pe.entry((b.pe.row, b.pe.col)).or_default();
        e.0 += b.bytes;
        e.1.push(&b.label);
    }
    for ((row, col), (bytes, labels)) in per_pe {
        if bytes > manifest.sram_bytes {
            diags.push(
                Diagnostic::error(
                    CheckKind::SramBudget,
                    format!(
                        "peak footprint {bytes} B exceeds the {} B SRAM ({})",
                        manifest.sram_bytes,
                        labels.join(" + "),
                    ),
                )
                .at_pe(PeId::new(row, col))
                .with_hint("shrink the block size or spread the stages over a longer pipeline"),
            );
        }
    }
}

/// Check 5 — task liveness: every declared task must be activatable from an
/// entry point (a host activation, a receive completion on a supplied
/// channel, or a send completion).
fn check_task_liveness(manifest: &MappingManifest, diags: &mut Vec<Diagnostic>) {
    let key = |pe: PeId, t: TaskId| ((pe.row, pe.col), t.0);
    let mut activatable: BTreeSet<((usize, usize), u16)> = BTreeSet::new();
    for e in &manifest.entries {
        activatable.insert(key(e.pe, e.task));
    }
    for r in &manifest.recvs {
        if r.recvs > 0 {
            activatable.insert(key(r.pe, r.activates));
        }
    }
    for s in &manifest.sends {
        if let Some(t) = s.activates {
            if s.sends > 0 {
                activatable.insert(key(s.pe, t));
            }
        }
    }
    let mut declared: BTreeSet<((usize, usize), u16)> = BTreeSet::new();
    for t in &manifest.tasks {
        declared.insert(key(t.pe, t.task));
    }
    for &((row, col), t) in &declared {
        if !activatable.contains(&((row, col), t)) {
            diags.push(
                Diagnostic::error(
                    CheckKind::TaskLiveness,
                    format!("task {t} is declared but nothing ever activates it"),
                )
                .at_pe(PeId::new(row, col))
                .with_hint("bind it to a receive/send completion or activate it from the host"),
            );
        }
    }
    // The converse: an activation targeting a task the PE never declared
    // would be dropped on the floor at runtime.
    for r in &manifest.recvs {
        if r.recvs > 0 && !declared.contains(&key(r.pe, r.activates)) {
            diags.push(
                Diagnostic::error(
                    CheckKind::TaskLiveness,
                    format!(
                        "receive completion activates task {} which this PE's program does not declare",
                        r.activates.0
                    ),
                )
                .at_pe(r.pe)
                .on_color(r.color)
                .with_hint("declare the task on the PE or fix the activation target"),
            );
        }
    }
}
