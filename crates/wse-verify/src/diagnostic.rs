//! Typed, located diagnostics emitted by the static mapping verifier.
//!
//! Each [`Diagnostic`] names the check that fired, how severe the finding is,
//! the PE and color it is anchored to (when the defect has a location), and a
//! fix hint — the same shape a CSL compile-time route error takes on the real
//! CS-2 toolchain, where unroutable colors are rejected before the wafer is
//! ever programmed.

use wse_sim::{Color, PeId};

/// How severe a verifier finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not fatal: the mapping can still run.
    Warning,
    /// The mapping is defective: simulating it would fail (deadlock, routing
    /// error, SRAM overflow) or silently drop data.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which static check produced a diagnostic.
///
/// The derived `Ord` (declaration order) is part of the stable reporting
/// surface: [`rank`] uses it as a tie-break, so adding variants at the end
/// keeps existing golden output stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckKind {
    /// Every declared stream resolves on-mesh to a RAMP with no ramp-less
    /// cycle (static `NoRoute` / `RouteOffMesh` / `RouteMismatch` /
    /// `RoutingLoop`).
    RouteSoundness,
    /// ≤ 24 colors live per PE and no two rules on one PE claim the same
    /// color.
    ColorDiscipline,
    /// Every statically-declared receive has a matching upstream producer
    /// and vice versa, with wavelet totals that balance.
    ChannelCompleteness,
    /// Conservative per-PE peak footprint fits the 48 KB SRAM.
    SramBudget,
    /// Every declared task is activatable from an entry point.
    TaskLiveness,
    /// The channel-dependency graph is acyclic, upgrading task liveness and
    /// channel balance into a deadlock-freedom proof (see
    /// [`crate::analysis`]); a cycle is reported with its member channels.
    DeadlockFreedom,
    /// Route overlap: streams of several colors serialize on one fabric
    /// link whose worst-case load makes it the predicted bottleneck.
    LinkContention,
}

impl CheckKind {
    /// Stable kebab-case name used in diagnostic rendering and lint output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::RouteSoundness => "route-soundness",
            CheckKind::ColorDiscipline => "color-discipline",
            CheckKind::ChannelCompleteness => "channel-completeness",
            CheckKind::SramBudget => "sram-budget",
            CheckKind::TaskLiveness => "task-liveness",
            CheckKind::DeadlockFreedom => "deadlock-freedom",
            CheckKind::LinkContention => "link-contention",
        }
    }
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One finding of the static verifier, located at a PE/color when the defect
/// has a physical anchor.
///
/// `Ord` is derived over the fields in declaration order (severity, check,
/// location, text), giving every diagnostic a total, deterministic order that
/// golden tests and `--json` output can rely on; [`rank`] layers
/// most-severe-first presentation on top of it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// The check that fired.
    pub check: CheckKind,
    /// The PE the finding is anchored to, when it has one.
    pub pe: Option<PeId>,
    /// The color involved, when there is one.
    pub color: Option<Color>,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    #[must_use]
    pub fn error(check: CheckKind, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Error,
            check,
            pe: None,
            color: None,
            message: message.into(),
            hint: None,
        }
    }

    /// Construct a warning diagnostic.
    #[must_use]
    pub fn warning(check: CheckKind, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warning,
            check,
            pe: None,
            color: None,
            message: message.into(),
            hint: None,
        }
    }

    /// Anchor the diagnostic at a PE.
    #[must_use]
    pub fn at_pe(mut self, pe: PeId) -> Self {
        self.pe = Some(pe);
        self
    }

    /// Attach the color involved.
    #[must_use]
    pub fn on_color(mut self, color: Color) -> Self {
        self.color = Some(color);
        self
    }

    /// Attach a fix hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

/// Sort diagnostics into the canonical reporting order: most severe first,
/// then by check kind, location, and message text.
///
/// The order is total and deterministic (no two distinct diagnostics compare
/// equal), so repeated lints of the same mapping render byte-identical
/// reports — the property the `--json` output and golden tests pin.
pub fn rank(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.cmp(b)));
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity, self.check)?;
        if let Some(pe) = self.pe {
            write!(f, " {pe}")?;
        }
        if let Some(color) = self.color {
            write!(f, " {color}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(hint) = &self.hint {
            write!(f, " (help: {hint})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_includes_location_and_hint() {
        let d = Diagnostic::error(CheckKind::RouteSoundness, "no route")
            .at_pe(PeId::new(2, 3))
            .on_color(Color::new(5))
            .with_hint("install a rule");
        let s = d.to_string();
        assert!(s.contains("error[route-soundness]"), "{s}");
        assert!(s.contains("PE(2,3)"), "{s}");
        assert!(s.contains("color5"), "{s}");
        assert!(s.contains("help: install a rule"), "{s}");
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn rank_puts_errors_first_with_total_tiebreak() {
        let w = Diagnostic::warning(CheckKind::LinkContention, "hot link");
        let e1 = Diagnostic::error(CheckKind::RouteSoundness, "no route").at_pe(PeId::new(0, 1));
        let e2 = Diagnostic::error(CheckKind::RouteSoundness, "no route").at_pe(PeId::new(0, 0));
        let mut diags = vec![w.clone(), e1.clone(), e2.clone()];
        rank(&mut diags);
        assert_eq!(diags, vec![e2, e1, w]);
    }
}
