//! The declarative mapping manifest the static verifier consumes.
//!
//! A [`MappingManifest`] is the static self-description a mapping strategy
//! emits *alongside* the closures it installs on the simulator: every routing
//! rule, every statically-known send and receive (with wavelet totals), every
//! host injection, every SRAM reservation, and the task graph. The verifier
//! ([`crate::verify`]) decides routability, channel balance, SRAM fit, and
//! task liveness from this description alone — no simulation required.

use wse_sim::{Color, PeId, RouteRule, TaskId, PE_SRAM_BYTES};

/// One routing-rule installation (`Simulator::route`).
///
/// The manifest keeps every claim, including re-claims of the same
/// `(PE, color)` pair — the color-discipline check flags conflicting
/// duplicates that a `HashMap`-backed fabric would silently overwrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDecl {
    /// The PE the rule is installed on.
    pub pe: PeId,
    /// The color the rule claims.
    pub color: Color,
    /// The installed rule.
    pub rule: RouteRule,
}

/// A statically-declared sender: `sends` async sends of `words_per_send`
/// wavelets, originating at `pe`'s RAMP on `color`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendDecl {
    /// Originating PE.
    pub pe: PeId,
    /// Fabric color the stream leaves on.
    pub color: Color,
    /// Wavelets per send.
    pub words_per_send: usize,
    /// Number of sends over the mapping's lifetime.
    pub sends: usize,
    /// Task activated locally when a send completes, if any.
    pub activates: Option<TaskId>,
}

/// A statically-declared receiver: `recvs` postings of an input descriptor
/// of `extent` wavelets on `color` at `pe`, each activating `activates`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvDecl {
    /// Receiving PE.
    pub pe: PeId,
    /// Color the descriptor listens on.
    pub color: Color,
    /// Wavelets per completed receive.
    pub extent: usize,
    /// Total receive postings over the mapping's lifetime (initial posting
    /// plus every chained `recv_async`).
    pub recvs: usize,
    /// Task activated when a receive completes.
    pub activates: TaskId,
}

/// A host-side injection (`Simulator::inject_stream`/`inject_blocks`):
/// wavelets delivered straight into `pe`'s RAMP on `color`, bypassing the
/// fabric routers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectDecl {
    /// Destination PE.
    pub pe: PeId,
    /// Color the wavelets are tagged with.
    pub color: Color,
    /// Total wavelets injected.
    pub words: usize,
}

/// A declared SRAM reservation on one PE (the working set its kernel will
/// `mem_alloc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferDecl {
    /// The reserving PE.
    pub pe: PeId,
    /// Bytes reserved.
    pub bytes: usize,
    /// What the buffer holds (for diagnostics).
    pub label: String,
}

/// A task a PE's program defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskDecl {
    /// The PE owning the task.
    pub pe: PeId,
    /// The task id.
    pub task: TaskId,
}

/// A host-side activation (`Simulator::activate`) — a task liveness entry
/// point besides receive/send completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryDecl {
    /// The activated PE.
    pub pe: PeId,
    /// The activated task.
    pub task: TaskId,
}

/// Static self-description of one constructed mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingManifest {
    /// Human-readable mapping name (strategy + shape) for reports.
    pub name: String,
    /// Mesh rows.
    pub rows: usize,
    /// Mesh columns.
    pub cols: usize,
    /// Per-PE SRAM capacity the budget check enforces.
    pub sram_bytes: usize,
    /// Every routing-rule installation, in installation order.
    pub routes: Vec<RouteDecl>,
    /// Statically-declared senders.
    pub sends: Vec<SendDecl>,
    /// Statically-declared receivers.
    pub recvs: Vec<RecvDecl>,
    /// Host injections.
    pub injections: Vec<InjectDecl>,
    /// Declared SRAM reservations.
    pub buffers: Vec<BufferDecl>,
    /// Declared tasks.
    pub tasks: Vec<TaskDecl>,
    /// Host activations.
    pub entries: Vec<EntryDecl>,
}

impl MappingManifest {
    /// Create an empty manifest for a `rows × cols` mesh with the CS-2's
    /// 48 KB per-PE SRAM.
    #[must_use]
    pub fn new(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        Self {
            name: name.into(),
            rows,
            cols,
            sram_bytes: PE_SRAM_BYTES,
            routes: Vec::new(),
            sends: Vec::new(),
            recvs: Vec::new(),
            injections: Vec::new(),
            buffers: Vec::new(),
            tasks: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Record a routing-rule installation.
    pub fn route(&mut self, pe: PeId, color: Color, rule: RouteRule) {
        self.routes.push(RouteDecl { pe, color, rule });
    }

    /// Declare a sender: `sends` async sends of `words_per_send` wavelets.
    pub fn declare_send(
        &mut self,
        pe: PeId,
        color: Color,
        words_per_send: usize,
        sends: usize,
        activates: Option<TaskId>,
    ) {
        self.sends.push(SendDecl {
            pe,
            color,
            words_per_send,
            sends,
            activates,
        });
    }

    /// Declare a receiver: `recvs` postings of `extent` wavelets each.
    pub fn declare_recv(
        &mut self,
        pe: PeId,
        color: Color,
        extent: usize,
        recvs: usize,
        activates: TaskId,
    ) {
        self.recvs.push(RecvDecl {
            pe,
            color,
            extent,
            recvs,
            activates,
        });
    }

    /// Declare a host injection of `words` total wavelets.
    pub fn declare_injection(&mut self, pe: PeId, color: Color, words: usize) {
        self.injections.push(InjectDecl { pe, color, words });
    }

    /// Declare an SRAM reservation.
    pub fn declare_buffer(&mut self, pe: PeId, bytes: usize, label: impl Into<String>) {
        self.buffers.push(BufferDecl {
            pe,
            bytes,
            label: label.into(),
        });
    }

    /// Declare a task a PE's program defines.
    pub fn declare_task(&mut self, pe: PeId, task: TaskId) {
        self.tasks.push(TaskDecl { pe, task });
    }

    /// Declare a host activation (task liveness entry point).
    pub fn declare_entry(&mut self, pe: PeId, task: TaskId) {
        self.entries.push(EntryDecl { pe, task });
    }

    /// Total PEs that carry any declaration — a cheap size measure for
    /// reports.
    #[must_use]
    pub fn populated_pes(&self) -> usize {
        let mut pes: Vec<PeId> = self
            .routes
            .iter()
            .map(|r| r.pe)
            .chain(self.sends.iter().map(|s| s.pe))
            .chain(self.recvs.iter().map(|r| r.pe))
            .chain(self.buffers.iter().map(|b| b.pe))
            .chain(self.tasks.iter().map(|t| t.pe))
            .collect();
        pes.sort_unstable_by_key(|p| (p.row, p.col));
        pes.dedup();
        pes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populated_pes_deduplicates() {
        let mut m = MappingManifest::new("t", 1, 2);
        let pe = PeId::new(0, 0);
        m.declare_task(pe, TaskId(0));
        m.declare_buffer(pe, 16, "ws");
        m.declare_recv(PeId::new(0, 1), Color::new(0), 4, 1, TaskId(0));
        assert_eq!(m.populated_pes(), 2);
    }
}
