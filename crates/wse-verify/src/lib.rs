#![forbid(unsafe_code)]
//! # wse-verify
//!
//! Static verification of CereSZ wafer mappings — proving routing,
//! deadlock-freedom, SRAM budgets, and task liveness *before* a single
//! simulated cycle runs.
//!
//! The CereSZ paper's contribution is the mapping: color routing, stage
//! distribution, and head-relaying on a 757×996 PE fabric with 24 colors and
//! 48 KB of SRAM per PE. On the real CS-2 the CSL compiler rejects
//! unroutable colors at compile time; in this reproduction the analogous
//! defects (a receiver with no sender, a route cycle that never ramps, an
//! SRAM overflow) previously surfaced only dynamically, as a
//! [`wse_sim::SimError::Deadlock`] halfway through a run. This crate makes
//! them static:
//!
//! 1. **Route soundness** — every declared stream resolves on-mesh, reaches
//!    a RAMP, and contains no ramp-less cycle (static `NoRoute` /
//!    `RouteOffMesh` / `RouteMismatch` / `RoutingLoop`).
//! 2. **Color discipline** — at most 24 colors live per PE; no two rules on
//!    one PE claim the same color with conflicting directions.
//! 3. **Channel completeness** — every statically-declared receive has a
//!    matching upstream producer and vice versa, and the wavelet totals
//!    balance (a shortfall is a deadlock proved before simulation).
//! 4. **SRAM budget** — a conservative peak-footprint bound per PE from the
//!    declared buffer reservations, checked against the 48 KB capacity the
//!    simulator's `MemoryTracker` enforces dynamically.
//! 5. **Task liveness** — every declared [`wse_sim::TaskId`] is activatable
//!    from an entry point (host activation or a descriptor completion).
//!
//! Mappings describe themselves with a [`MappingManifest`] — the declarative
//! layer each `ceresz-wse` strategy emits alongside the closures it installs
//! — and [`verify`] returns typed, PE/color-located [`Diagnostic`]s with fix
//! hints. `ceresz lint` sweeps the shipped strategies across mesh shapes and
//! fails on any error.
//!
//! Beyond soundness, [`analysis::analyze`] runs a *static performance
//! analysis* over the same manifest: per-link worst-case load and contention,
//! a critical-path lower bound on the makespan in integer ticks, per-PE SRAM
//! high-watermarks, and a channel-dependency-graph deadlock-freedom proof.
//! The resulting [`StaticProfile`] is the scoring surface for mapping
//! autotuning and is cross-validated against the cycle-exact flight recorder
//! by `ceresz lint --analyze`.

pub mod analysis;
pub mod checks;
pub mod diagnostic;
pub mod manifest;

pub use analysis::{
    analyze, ChannelBound, DeadlockVerdict, LinkLoad, SramWatermark, StaticProfile,
};
pub use checks::{verify, VerifyReport};
pub use diagnostic::{rank, CheckKind, Diagnostic, Severity};
pub use manifest::{
    BufferDecl, EntryDecl, InjectDecl, MappingManifest, RecvDecl, RouteDecl, SendDecl, TaskDecl,
};

#[cfg(test)]
mod tests {
    use super::*;
    use wse_sim::{Color, Direction, PeId, RouteRule, TaskId, PE_SRAM_BYTES};

    const C0: Color = Color::new(0);
    const C1: Color = Color::new(1);
    const RECV: TaskId = TaskId(0);

    fn rule(input: Option<Direction>, outputs: &[Direction]) -> RouteRule {
        RouteRule {
            input,
            outputs: outputs.to_vec(),
        }
    }

    /// A minimal clean mapping: PE(0,0) sends 4 blocks of 8 wavelets east to
    /// PE(0,1), which consumes them.
    fn clean_two_pe() -> MappingManifest {
        let mut m = MappingManifest::new("test", 1, 2);
        let src = PeId::new(0, 0);
        let dst = PeId::new(0, 1);
        m.route(src, C0, rule(None, &[Direction::East]));
        m.route(dst, C0, rule(Some(Direction::West), &[Direction::Ramp]));
        m.declare_send(src, C0, 8, 4, None);
        m.declare_recv(dst, C0, 8, 4, RECV);
        m.declare_task(dst, RECV);
        m.declare_task(src, TaskId(9));
        m.declare_entry(src, TaskId(9));
        m
    }

    #[test]
    fn clean_mapping_verifies_clean() {
        let report = verify(&clean_two_pe());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.diagnostics.len(), 0, "{report}");
    }

    #[test]
    fn duplicate_color_claim_is_flagged_at_the_pe() {
        let mut m = clean_two_pe();
        // A second, conflicting claim of C0 on the destination PE.
        m.route(
            PeId::new(0, 1),
            C0,
            rule(Some(Direction::East), &[Direction::Ramp]),
        );
        let report = verify(&m);
        let d = report
            .errors()
            .find(|d| d.check == CheckKind::ColorDiscipline)
            .expect("duplicate claim must be an error");
        assert_eq!(d.pe, Some(PeId::new(0, 1)));
        assert_eq!(d.color, Some(C0));
        assert!(d.message.contains("conflicting"), "{d}");
    }

    #[test]
    fn rampless_cycle_is_flagged() {
        let mut m = MappingManifest::new("cycle", 2, 2);
        // A consistent 4-PE ring on C0 that never ramps:
        // (0,0)→E, (0,1)→S, (1,1)→W, (1,0)→N, back into (0,0) from South.
        m.route(
            PeId::new(0, 0),
            C0,
            rule(Some(Direction::South), &[Direction::East]),
        );
        m.route(
            PeId::new(0, 1),
            C0,
            rule(Some(Direction::West), &[Direction::South]),
        );
        m.route(
            PeId::new(1, 1),
            C0,
            rule(Some(Direction::North), &[Direction::West]),
        );
        m.route(
            PeId::new(1, 0),
            C0,
            rule(Some(Direction::East), &[Direction::North]),
        );
        let report = verify(&m);
        let d = report
            .errors()
            .find(|d| d.check == CheckKind::RouteSoundness && d.message.contains("ramp-less cycle"))
            .unwrap_or_else(|| panic!("rampless cycle must be an error:\n{report}"));
        assert_eq!(d.color, Some(C0));
        assert!(d.message.contains("PE(0,0)"), "{d}");
    }

    #[test]
    fn sram_overflow_is_flagged_with_totals() {
        let mut m = clean_two_pe();
        let pe = PeId::new(0, 1);
        m.declare_buffer(pe, 40 * 1024, "stage working set");
        m.declare_buffer(pe, 9 * 1024, "frame buffer");
        let report = verify(&m);
        let d = report
            .errors()
            .find(|d| d.check == CheckKind::SramBudget)
            .expect("49 KB on one PE must overflow the 48 KB budget");
        assert_eq!(d.pe, Some(pe));
        assert!(
            d.message.contains(&(49 * 1024).to_string())
                && d.message.contains(&PE_SRAM_BYTES.to_string()),
            "{d}"
        );
        // The same totals split across two PEs fit.
        let mut ok = clean_two_pe();
        ok.declare_buffer(PeId::new(0, 0), 40 * 1024, "a");
        ok.declare_buffer(PeId::new(0, 1), 9 * 1024, "b");
        assert!(verify(&ok).is_clean());
    }

    #[test]
    fn orphan_receiver_is_flagged() {
        let mut m = clean_two_pe();
        // A receive on C1 that nothing ever feeds.
        m.declare_recv(PeId::new(0, 0), C1, 16, 2, TaskId(9));
        let report = verify(&m);
        let d = report
            .errors()
            .find(|d| d.check == CheckKind::ChannelCompleteness)
            .expect("orphan receiver must be an error");
        assert_eq!(d.pe, Some(PeId::new(0, 0)));
        assert_eq!(d.color, Some(C1));
        assert!(d.message.contains("orphan receiver"), "{d}");
    }

    #[test]
    fn orphan_producer_is_flagged() {
        let mut m = clean_two_pe();
        // Remove the receive: the sender's wavelets land with nobody posted.
        m.recvs.clear();
        m.tasks.retain(|t| t.task != RECV);
        let report = verify(&m);
        let d = report
            .errors()
            .find(|d| d.message.contains("orphan producer"))
            .expect("orphan producer must be an error");
        assert_eq!(d.pe, Some(PeId::new(0, 1)));
    }

    #[test]
    fn under_supplied_channel_is_a_static_deadlock() {
        let mut m = clean_two_pe();
        m.sends[0].sends = 3; // 24 wavelets delivered, 32 expected
        let report = verify(&m);
        let d = report
            .errors()
            .find(|d| d.message.contains("under-supplied"))
            .expect("shortfall must be an error");
        assert!(d.message.contains("deadlock"), "{d}");
    }

    #[test]
    fn over_supplied_channel_is_a_warning_only() {
        let mut m = clean_two_pe();
        m.sends[0].sends = 5;
        let report = verify(&m);
        assert!(report.is_clean(), "{report}");
        assert!(report
            .warnings()
            .any(|d| d.message.contains("over-supplied")));
    }

    #[test]
    fn unreachable_task_is_flagged() {
        let mut m = clean_two_pe();
        m.declare_task(PeId::new(0, 1), TaskId(5));
        let report = verify(&m);
        let d = report
            .errors()
            .find(|d| d.check == CheckKind::TaskLiveness)
            .expect("unreachable task must be an error");
        assert_eq!(d.pe, Some(PeId::new(0, 1)));
        assert!(d.message.contains("task 5"), "{d}");
    }

    #[test]
    fn activation_of_undeclared_task_is_flagged() {
        let mut m = clean_two_pe();
        m.recvs[0].activates = TaskId(7); // the PE only declares task 0
        let report = verify(&m);
        assert!(report
            .errors()
            .any(|d| d.check == CheckKind::TaskLiveness && d.message.contains("does not declare")));
    }

    #[test]
    fn injection_satisfies_a_receiver_without_routes() {
        // Row-parallel shape: host injection straight into the PE's RAMP,
        // no fabric rules at all.
        let mut m = MappingManifest::new("inject", 1, 1);
        let pe = PeId::new(0, 0);
        m.declare_injection(pe, C0, 64);
        m.declare_recv(pe, C0, 32, 2, RECV);
        m.declare_task(pe, RECV);
        let report = verify(&m);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn off_mesh_route_is_flagged() {
        let mut m = MappingManifest::new("edge", 1, 1);
        m.route(PeId::new(0, 0), C0, rule(None, &[Direction::East]));
        m.declare_send(PeId::new(0, 0), C0, 4, 1, None);
        let report = verify(&m);
        assert!(report
            .errors()
            .any(|d| d.check == CheckKind::RouteSoundness && d.message.contains("off the 1x1")));
    }

    #[test]
    fn missing_downstream_rule_is_flagged_at_the_gap() {
        let mut m = MappingManifest::new("gap", 1, 3);
        m.route(PeId::new(0, 0), C0, rule(None, &[Direction::East]));
        // No rule at (0,1): the stream stalls there.
        m.declare_send(PeId::new(0, 0), C0, 4, 1, None);
        let report = verify(&m);
        let d = report
            .errors()
            .find(|d| d.check == CheckKind::RouteSoundness)
            .expect("gap must be an error");
        assert_eq!(d.pe, Some(PeId::new(0, 1)));
    }

    #[test]
    fn report_renders_summary_and_findings() {
        let mut m = clean_two_pe();
        m.declare_task(PeId::new(0, 1), TaskId(5));
        let s = verify(&m).to_string();
        assert!(s.contains("1 error(s)"), "{s}");
        assert!(s.contains("task-liveness"), "{s}");
    }
}
