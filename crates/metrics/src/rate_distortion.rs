//! Rate–distortion accounting (§5.4): bit rate (bits per value) against
//! quality (PSNR/SSIM) across error bounds.

/// Bits per original value for a compressed representation.
#[must_use]
pub fn bit_rate(original_values: usize, compressed_bytes: usize) -> f64 {
    if original_values == 0 {
        0.0
    } else {
        compressed_bytes as f64 * 8.0 / original_values as f64
    }
}

/// One point of a rate–distortion curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateDistortionPoint {
    /// The error bound that produced the point.
    pub error_bound: f64,
    /// Bits per value.
    pub bit_rate: f64,
    /// PSNR in dB.
    pub psnr: f64,
    /// SSIM in [0, 1].
    pub ssim: f64,
    /// Compression ratio (32 / bit_rate for f32 data).
    pub ratio: f64,
}

impl RateDistortionPoint {
    /// Construct from raw measurements on `f32` data.
    #[must_use]
    pub fn new(
        error_bound: f64,
        original_values: usize,
        compressed_bytes: usize,
        psnr: f64,
        ssim: f64,
    ) -> Self {
        let br = bit_rate(original_values, compressed_bytes);
        Self {
            error_bound,
            bit_rate: br,
            psnr,
            ssim,
            ratio: if br > 0.0 { 32.0 / br } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_rate_math() {
        // 1000 f32 values (4000 B) compressed to 500 B → 4 bits/value.
        assert_eq!(bit_rate(1000, 500), 4.0);
        assert_eq!(bit_rate(0, 10), 0.0);
    }

    #[test]
    fn ratio_is_inverse_of_bit_rate() {
        let p = RateDistortionPoint::new(1e-3, 1000, 500, 60.0, 0.99);
        assert!((p.ratio - 8.0).abs() < 1e-12);
    }
}
