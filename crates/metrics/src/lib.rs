//! # metrics
//!
//! Data-quality metrics for lossy compression, as used in §5.4 of the
//! CereSZ paper: PSNR, SSIM (windowed, over a 2-D slice), error-bound
//! verification, and rate–distortion points.

#![forbid(unsafe_code)]
pub mod psnr;
pub mod rate_distortion;
pub mod ssim;

pub use psnr::{mse, psnr};
pub use rate_distortion::{bit_rate, RateDistortionPoint};
pub use ssim::{ssim_2d, SsimConfig};

/// Maximum absolute pointwise error.
///
/// # Panics
/// If the slices differ in length.
#[must_use]
pub fn max_error(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (f64::from(*a) - f64::from(*b)).abs())
        .fold(0.0, f64::max)
}

/// Value range (max − min) of the finite values, the PSNR normalizer.
#[must_use]
pub fn value_range(data: &[f32]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in data {
        if v.is_finite() {
            min = min.min(f64::from(v));
            max = max.max(f64::from(v));
        }
    }
    if min > max {
        0.0
    } else {
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_error_basics() {
        assert_eq!(max_error(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert_eq!(max_error(&[], &[]), 0.0);
    }

    #[test]
    fn value_range_basics() {
        assert_eq!(value_range(&[-1.0, 3.0, 0.0]), 4.0);
        assert_eq!(value_range(&[f32::NAN]), 0.0);
    }
}
