//! Peak signal-to-noise ratio for value-range-normalized scientific data.
//!
//! `PSNR = 20·log10(range) − 10·log10(MSE)` in dB, with `range` the original
//! data's value range — the convention of Z-checker and the compression
//! papers this workspace reproduces (Fig. 15 reports 84.77 dB for NYX
//! velocity_x at REL 1e-4).

use crate::value_range;

/// Mean squared error.
///
/// # Panics
/// If the slices differ in length.
#[must_use]
pub fn mse(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    if original.is_empty() {
        return 0.0;
    }
    original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| {
            let d = f64::from(*a) - f64::from(*b);
            d * d
        })
        .sum::<f64>()
        / original.len() as f64
}

/// PSNR in dB; `f64::INFINITY` for a perfect reconstruction.
#[must_use]
pub fn psnr(original: &[f32], reconstructed: &[f32]) -> f64 {
    let m = mse(original, reconstructed);
    if m == 0.0 {
        return f64::INFINITY;
    }
    let range = value_range(original);
    20.0 * range.log10() - 10.0 * m.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reconstruction_is_infinite() {
        let d = [1.0f32, 2.0, 3.0];
        assert_eq!(psnr(&d, &d), f64::INFINITY);
    }

    #[test]
    fn known_value() {
        // range 1, uniform error 0.01 → MSE 1e-4 → PSNR 40 dB.
        let orig = [0.0f32, 1.0];
        let rec = [0.01f32, 1.01];
        let p = psnr(&orig, &rec);
        assert!((p - 40.0).abs() < 1e-4, "psnr = {p}");
    }

    #[test]
    fn smaller_error_bound_gives_higher_psnr() {
        let orig: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
        let coarse: Vec<f32> = orig.iter().map(|v| v + 0.01).collect();
        let fine: Vec<f32> = orig.iter().map(|v| v + 0.001).collect();
        assert!(psnr(&orig, &fine) > psnr(&orig, &coarse));
    }

    #[test]
    fn uniform_quantization_psnr_formula() {
        // Quantization with bound ε on range r gives expected PSNR around
        // 20·log10(r/ε) − 10·log10(3) for uniform error (σ² = ε²/3).
        let eps = 1e-3f64;
        let orig: Vec<f32> = (0..100_000).map(|i| (i as f32 * 0.000_37).sin()).collect();
        let rec: Vec<f32> = orig
            .iter()
            .enumerate()
            .map(|(i, v)| {
                // Deterministic pseudo-uniform error in [-ε, ε].
                let u = ((i as u64).wrapping_mul(2654435761) % 2000) as f64 / 1000.0 - 1.0;
                v + (u * eps) as f32
            })
            .collect();
        // MSE = ε²/3 ⇒ PSNR = 20·log10(r) − 20·log10(ε) + 10·log10(3).
        let expected = 20.0 * value_range(&orig).log10() - 20.0 * eps.log10() + 10.0 * 3f64.log10();
        let got = psnr(&orig, &rec);
        assert!((got - expected).abs() < 1.0, "{got} vs {expected}");
    }
}
