//! Structural Similarity Index (SSIM) over 2-D slices.
//!
//! Windowed SSIM following Wang et al. 2004: per-window luminance, contrast,
//! and structure terms with the standard stabilizers `C1 = (K1·L)²`,
//! `C2 = (K2·L)²`, averaged over all windows. Scientific data uses the
//! field's value range as the dynamic range `L`.

use crate::value_range;

/// SSIM parameters (Wang et al. defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimConfig {
    /// Window side length.
    pub window: usize,
    /// Window stride (set = window for tiled, 1 for dense).
    pub stride: usize,
    /// Stabilizer K1.
    pub k1: f64,
    /// Stabilizer K2.
    pub k2: f64,
}

impl Default for SsimConfig {
    fn default() -> Self {
        Self {
            window: 8,
            stride: 8,
            k1: 0.01,
            k2: 0.03,
        }
    }
}

/// SSIM between a 2-D original and its reconstruction (row-major
/// `rows × cols`). Returns 1.0 for identical inputs.
///
/// # Panics
/// If the buffers do not match `rows·cols` or the window exceeds the grid.
#[must_use]
pub fn ssim_2d(
    original: &[f32],
    reconstructed: &[f32],
    rows: usize,
    cols: usize,
    cfg: &SsimConfig,
) -> f64 {
    assert_eq!(original.len(), rows * cols, "original shape mismatch");
    assert_eq!(reconstructed.len(), rows * cols, "reconstruction mismatch");
    assert!(cfg.window > 0 && cfg.stride > 0);
    assert!(
        cfg.window <= rows && cfg.window <= cols,
        "window larger than the grid"
    );
    // Constant fields have zero range; a tiny floor keeps the
    // stabilizers representable (denormal C2 would make 0/0 = NaN).
    let l = value_range(original).max(1e-30);
    let c1 = (cfg.k1 * l).powi(2);
    let c2 = (cfg.k2 * l).powi(2);

    let mut total = 0.0;
    let mut windows = 0usize;
    let mut i = 0;
    while i + cfg.window <= rows {
        let mut j = 0;
        while j + cfg.window <= cols {
            total += window_ssim(original, reconstructed, cols, i, j, cfg.window, c1, c2);
            windows += 1;
            j += cfg.stride;
        }
        i += cfg.stride;
    }
    if windows == 0 {
        1.0
    } else {
        total / windows as f64
    }
}

#[allow(clippy::too_many_arguments)]
fn window_ssim(
    a: &[f32],
    b: &[f32],
    cols: usize,
    row0: usize,
    col0: usize,
    w: usize,
    c1: f64,
    c2: f64,
) -> f64 {
    let n = (w * w) as f64;
    let mut sum_a = 0.0;
    let mut sum_b = 0.0;
    for i in row0..row0 + w {
        for j in col0..col0 + w {
            sum_a += f64::from(a[i * cols + j]);
            sum_b += f64::from(b[i * cols + j]);
        }
    }
    let mu_a = sum_a / n;
    let mu_b = sum_b / n;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    let mut cov = 0.0;
    for i in row0..row0 + w {
        for j in col0..col0 + w {
            let da = f64::from(a[i * cols + j]) - mu_a;
            let db = f64::from(b[i * cols + j]) - mu_b;
            var_a += da * da;
            var_b += db * db;
            cov += da * db;
        }
    }
    var_a /= n - 1.0;
    var_b /= n - 1.0;
    cov /= n - 1.0;
    ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
        / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| ((i % cols) as f32 * 0.05).sin() + ((i / cols) as f32 * 0.03).cos())
            .collect()
    }

    #[test]
    fn identical_is_one() {
        let g = grid(32, 32);
        let s = ssim_2d(&g, &g, 32, 32, &SsimConfig::default());
        assert!((s - 1.0).abs() < 1e-12, "ssim = {s}");
    }

    #[test]
    fn small_noise_stays_near_one() {
        let g = grid(64, 64);
        let noisy: Vec<f32> = g
            .iter()
            .enumerate()
            .map(|(i, v)| v + ((i % 7) as f32 - 3.0) * 1e-5)
            .collect();
        let s = ssim_2d(&g, &noisy, 64, 64, &SsimConfig::default());
        assert!(s > 0.999, "ssim = {s}");
    }

    #[test]
    fn structure_destruction_tanks_ssim() {
        let g = grid(64, 64);
        let mut shuffled = g.clone();
        shuffled.reverse();
        let s = ssim_2d(&g, &shuffled, 64, 64, &SsimConfig::default());
        assert!(s < 0.5, "ssim = {s}");
    }

    #[test]
    fn ssim_is_symmetric_in_noise_magnitude_ordering() {
        let g = grid(64, 64);
        let mild: Vec<f32> = g.iter().map(|v| v + 0.001).collect();
        let strong: Vec<f32> = g.iter().map(|v| v * 0.5).collect();
        let cfg = SsimConfig::default();
        assert!(ssim_2d(&g, &mild, 64, 64, &cfg) > ssim_2d(&g, &strong, 64, 64, &cfg));
    }

    #[test]
    fn constant_fields_are_similar() {
        let a = vec![3.0f32; 256];
        let s = ssim_2d(&a, &a, 16, 16, &SsimConfig::default());
        assert!((s - 1.0).abs() < 1e-9);
    }
}
