//! Chrome-trace (`traceEvents`) document builder.
//!
//! The JSON emitted here loads in both `chrome://tracing` and Perfetto
//! (ui.perfetto.dev), which accept the legacy Chrome trace format. The
//! mapping used by the workspace exporters is: one *process* per mesh (or
//! per run), one *thread* per PE (so each PE gets its own track), and one
//! complete (`"ph": "X"`) slice per simulated task.
//!
//! Timestamps are microseconds in the trace format; the simulator exporters
//! write cycles as microseconds 1:1, which keeps slice arithmetic exact and
//! merely relabels the axis (1 "µs" on screen = 1 cycle).

use crate::json::JsonValue;

/// One complete slice on a track.
#[derive(Debug, Clone)]
struct Slice {
    pid: u64,
    tid: u64,
    name: String,
    cat: String,
    ts: f64,
    dur: f64,
}

/// One counter sample on a counter track.
#[derive(Debug, Clone)]
struct Counter {
    pid: u64,
    name: String,
    ts: f64,
    value: f64,
}

/// Builder for a Chrome-trace JSON document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    process_names: Vec<(u64, String)>,
    thread_names: Vec<(u64, u64, String)>,
    slices: Vec<Slice>,
    counters: Vec<Counter>,
}

impl ChromeTrace {
    /// An empty trace document.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Label a process track group (shown as the section header in the UI).
    pub fn set_process_name(&mut self, pid: u64, name: impl Into<String>) {
        self.process_names.push((pid, name.into()));
    }

    /// Label one thread track within a process.
    pub fn set_thread_name(&mut self, pid: u64, tid: u64, name: impl Into<String>) {
        self.thread_names.push((pid, tid, name.into()));
    }

    /// Add a complete (`ph: "X"`) slice. `ts` and `dur` are in trace
    /// microseconds.
    pub fn complete_slice(
        &mut self,
        pid: u64,
        tid: u64,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts: f64,
        dur: f64,
    ) {
        self.slices.push(Slice {
            pid,
            tid,
            name: name.into(),
            cat: cat.into(),
            ts,
            dur,
        });
    }

    /// Add a counter (`ph: "C"`) sample. Samples sharing `name` within a
    /// process form one counter track; the UI draws them as a step chart.
    /// `ts` is in trace microseconds.
    pub fn counter(&mut self, pid: u64, name: impl Into<String>, ts: f64, value: f64) {
        self.counters.push(Counter {
            pid,
            name: name.into(),
            ts,
            value,
        });
    }

    /// Number of slices added so far.
    #[must_use]
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Number of counter samples added so far.
    #[must_use]
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// Build the `{"traceEvents": [...]}` document.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        use JsonValue as J;
        let mut events = Vec::new();
        for (pid, name) in &self.process_names {
            events.push(J::obj(vec![
                ("name", J::Str("process_name".into())),
                ("ph", J::Str("M".into())),
                ("pid", J::Num(*pid as f64)),
                ("tid", J::Num(0.0)),
                ("args", J::obj(vec![("name", J::Str(name.clone()))])),
            ]));
        }
        for (pid, tid, name) in &self.thread_names {
            events.push(J::obj(vec![
                ("name", J::Str("thread_name".into())),
                ("ph", J::Str("M".into())),
                ("pid", J::Num(*pid as f64)),
                ("tid", J::Num(*tid as f64)),
                ("args", J::obj(vec![("name", J::Str(name.clone()))])),
            ]));
        }
        for s in &self.slices {
            events.push(J::obj(vec![
                ("name", J::Str(s.name.clone())),
                ("cat", J::Str(s.cat.clone())),
                ("ph", J::Str("X".into())),
                ("pid", J::Num(s.pid as f64)),
                ("tid", J::Num(s.tid as f64)),
                ("ts", J::Num(s.ts)),
                ("dur", J::Num(s.dur)),
            ]));
        }
        for c in &self.counters {
            events.push(J::obj(vec![
                ("name", J::Str(c.name.clone())),
                ("ph", J::Str("C".into())),
                ("pid", J::Num(c.pid as f64)),
                ("ts", J::Num(c.ts)),
                ("args", J::obj(vec![("value", J::Num(c.value))])),
            ]));
        }
        J::obj(vec![
            ("traceEvents", J::Arr(events)),
            ("displayTimeUnit", J::Str("ns".into())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn document_shape_matches_chrome_trace_format() {
        let mut t = ChromeTrace::new();
        t.set_process_name(1, "mesh 2x4");
        t.set_thread_name(1, 3, "pe (0,3)");
        t.complete_slice(1, 3, "recv", "task", 80.0, 156.2);
        t.complete_slice(1, 3, "recv", "task", 300.0, 40.0);
        assert_eq!(t.slice_count(), 2);

        let doc = json::parse(&t.to_json().to_pretty()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4); // 2 metadata + 2 slices

        let meta: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[1].get("args").unwrap().get("name").unwrap().as_str(),
            Some("pe (0,3)")
        );

        let slices: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].get("ts").unwrap().as_f64(), Some(80.0));
        assert_eq!(slices[0].get("dur").unwrap().as_f64(), Some(156.2));
        assert_eq!(slices[0].get("pid").unwrap().as_f64(), Some(1.0));
        assert_eq!(slices[0].get("tid").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn counter_events_carry_their_value() {
        let mut t = ChromeTrace::new();
        t.counter(1, "wavelets/window", 0.0, 12.0);
        t.counter(1, "wavelets/window", 1024.0, 7.5);
        assert_eq!(t.counter_count(), 2);

        let doc = json::parse(&t.to_json().to_pretty()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(
            counters[0].get("name").unwrap().as_str(),
            Some("wavelets/window")
        );
        assert_eq!(counters[1].get("ts").unwrap().as_f64(), Some(1024.0));
        assert_eq!(
            counters[1]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(7.5)
        );
    }
}
