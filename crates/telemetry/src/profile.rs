//! Per-stage cycle-attribution reports.
//!
//! A [`ProfileReport`] is the machine- and human-readable summary of one
//! simulated run: the headline simulator statistics, per-kernel-stage busy
//! cycles (every busy cycle is attributed to exactly one stage, so the
//! stage column sums to `total_busy_cycles`), and optional analytic cost
//! terms (the paper's Eq. 2 relay overhead and Eq. 3 pipeline cost model).
//!
//! Stage names follow `SubStageKind::name()` in `ceresz-core`
//! (`"quant-mul"`, `"lorenzo"`, `"shuffle-bit-3"`, …) plus the simulator's
//! pseudo-stages (`"dispatch"` for task overhead, `"unattributed"` for
//! cycles charged outside any labelled stage). [`stage_group`] folds these
//! into the paper's reporting granularity (Tables 1–3): *pre-quant*,
//! *lorenzo*, *encode*, *decode*.

use crate::json::JsonValue;

/// Busy cycles attributed to one kernel stage, summed over all PEs.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCycles {
    /// Stage name (`SubStageKind::name()` or a simulator pseudo-stage).
    pub name: String,
    /// Total busy cycles charged while this stage was active.
    pub cycles: f64,
}

/// Map a stage name onto the paper's Tables 1–3 reporting groups.
#[must_use]
pub fn stage_group(stage: &str) -> &'static str {
    match stage {
        "quant-mul" | "quant-add" => "pre-quant",
        "lorenzo" => "lorenzo",
        "sign" | "max" | "get-length" => "encode",
        s if s.starts_with("shuffle-bit") => "encode",
        s if s.starts_with("unshuffle-bit") => "decode",
        "apply-sign" | "prefix-sum" | "dequant-mul" => "decode",
        _ => "other",
    }
}

/// Canonical group order for tables and JSON.
pub const GROUP_ORDER: [&str; 5] = ["pre-quant", "lorenzo", "encode", "decode", "other"];

/// Machine-readable profile of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Which mapping produced the run (`"row-parallel"`, `"pipeline"`, …).
    pub strategy: String,
    /// Mesh rows the strategy occupied.
    pub mesh_rows: usize,
    /// Mesh columns the strategy occupied.
    pub mesh_cols: usize,
    /// Cycle at which the last task finished.
    pub finish_cycle: f64,
    /// Sum of busy cycles over all PEs.
    pub total_busy_cycles: f64,
    /// Tasks executed across all PEs.
    pub total_tasks: u64,
    /// Wavelets moved across the fabric.
    pub total_wavelets: u64,
    /// PEs that ran at least one task.
    pub active_pes: usize,
    /// Mean busy fraction of active PEs over the run.
    pub utilization: f64,
    /// Per-stage busy cycles; sums to `total_busy_cycles`.
    pub stages: Vec<StageCycles>,
    /// Analytic cost terms (Eq. 2 relay overhead, Eq. 3 pipeline terms, …)
    /// keyed by name.
    pub model_terms: Vec<(String, f64)>,
}

impl ProfileReport {
    /// Sum of all attributed stage cycles.
    #[must_use]
    pub fn attributed_cycles(&self) -> f64 {
        self.stages.iter().map(|s| s.cycles).sum()
    }

    /// Aggregate per-stage cycles into the paper's groups, in
    /// [`GROUP_ORDER`]; groups with zero cycles are omitted.
    #[must_use]
    pub fn grouped(&self) -> Vec<(&'static str, f64)> {
        GROUP_ORDER
            .iter()
            .filter_map(|group| {
                let cycles: f64 = self
                    .stages
                    .iter()
                    .filter(|s| stage_group(&s.name) == *group)
                    .map(|s| s.cycles)
                    .sum();
                (cycles > 0.0).then_some((*group, cycles))
            })
            .collect()
    }

    /// Serialize to the `profile.json` document shape.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        use JsonValue as J;
        let stages = J::Arr(
            self.stages
                .iter()
                .map(|s| {
                    J::obj(vec![
                        ("name", J::Str(s.name.clone())),
                        ("group", J::Str(stage_group(&s.name).into())),
                        ("cycles", J::Num(s.cycles)),
                        (
                            "share",
                            J::Num(if self.total_busy_cycles > 0.0 {
                                s.cycles / self.total_busy_cycles
                            } else {
                                0.0
                            }),
                        ),
                    ])
                })
                .collect(),
        );
        let groups = J::Obj(
            self.grouped()
                .into_iter()
                .map(|(g, c)| (g.to_owned(), J::Num(c)))
                .collect(),
        );
        let model = J::Obj(
            self.model_terms
                .iter()
                .map(|(k, v)| (k.clone(), J::Num(*v)))
                .collect(),
        );
        J::obj(vec![
            ("strategy", J::Str(self.strategy.clone())),
            (
                "mesh",
                J::obj(vec![
                    ("rows", J::Num(self.mesh_rows as f64)),
                    ("cols", J::Num(self.mesh_cols as f64)),
                ]),
            ),
            ("finish_cycle", J::Num(self.finish_cycle)),
            ("total_busy_cycles", J::Num(self.total_busy_cycles)),
            ("total_tasks", J::Num(self.total_tasks as f64)),
            ("total_wavelets", J::Num(self.total_wavelets as f64)),
            ("active_pes", J::Num(self.active_pes as f64)),
            ("utilization", J::Num(self.utilization)),
            ("stages", stages),
            ("groups", groups),
            ("model_terms", model),
        ])
    }

    /// Parse a document produced by [`to_json`]. Used by the golden tests
    /// and by tooling that post-processes `profile.json`.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let mesh = doc.get("mesh").ok_or("missing 'mesh'")?;
        let stages = doc
            .get("stages")
            .and_then(JsonValue::as_arr)
            .ok_or("missing 'stages' array")?
            .iter()
            .map(|s| {
                Ok(StageCycles {
                    name: s
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("stage missing 'name'")?
                        .to_owned(),
                    cycles: s
                        .get("cycles")
                        .and_then(JsonValue::as_f64)
                        .ok_or("stage missing 'cycles'")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let model_terms = doc
            .get("model_terms")
            .and_then(JsonValue::as_obj)
            .map(|pairs| {
                pairs
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                    .collect()
            })
            .unwrap_or_default();
        Ok(Self {
            strategy: doc
                .get("strategy")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_owned(),
            mesh_rows: mesh.get("rows").and_then(JsonValue::as_f64).unwrap_or(0.0) as usize,
            mesh_cols: mesh.get("cols").and_then(JsonValue::as_f64).unwrap_or(0.0) as usize,
            finish_cycle: num("finish_cycle")?,
            total_busy_cycles: num("total_busy_cycles")?,
            total_tasks: num("total_tasks")? as u64,
            total_wavelets: num("total_wavelets")? as u64,
            active_pes: num("active_pes")? as usize,
            utilization: num("utilization")?,
            stages,
            model_terms,
        })
    }

    /// Render the human-readable `--profile` table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} on {}x{} mesh\n",
            self.strategy, self.mesh_rows, self.mesh_cols
        ));
        out.push_str(&format!(
            "  finish cycle {:>14.0}   busy cycles {:>14.0}\n",
            self.finish_cycle, self.total_busy_cycles
        ));
        out.push_str(&format!(
            "  tasks {:>10}   wavelets {:>10}   active PEs {:>6}   utilization {:>6.1}%\n",
            self.total_tasks,
            self.total_wavelets,
            self.active_pes,
            self.utilization * 100.0
        ));
        out.push_str("\n  stage               group        cycles        share\n");
        out.push_str("  ------------------  ---------  ------------  -------\n");
        for s in &self.stages {
            let share = if self.total_busy_cycles > 0.0 {
                s.cycles / self.total_busy_cycles * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<18}  {:<9}  {:>12.0}  {:>6.2}%\n",
                s.name,
                stage_group(&s.name),
                s.cycles,
                share
            ));
        }
        let grouped = self.grouped();
        if !grouped.is_empty() {
            out.push_str("\n  group summary (paper Tables 1-3 granularity):\n");
            for (g, c) in grouped {
                let share = if self.total_busy_cycles > 0.0 {
                    c / self.total_busy_cycles * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!("  {g:<18}  {c:>12.0}  {share:>6.2}%\n"));
            }
        }
        if !self.model_terms.is_empty() {
            out.push_str("\n  analytic model terms:\n");
            for (k, v) in &self.model_terms {
                out.push_str(&format!("  {k:<28}  {v:>14.1}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> ProfileReport {
        ProfileReport {
            strategy: "pipeline".into(),
            mesh_rows: 2,
            mesh_cols: 8,
            finish_cycle: 10_000.0,
            total_busy_cycles: 1000.0,
            total_tasks: 12,
            total_wavelets: 40,
            active_pes: 16,
            utilization: 0.0625,
            stages: vec![
                StageCycles {
                    name: "quant-mul".into(),
                    cycles: 300.0,
                },
                StageCycles {
                    name: "quant-add".into(),
                    cycles: 100.0,
                },
                StageCycles {
                    name: "lorenzo".into(),
                    cycles: 150.0,
                },
                StageCycles {
                    name: "sign".into(),
                    cycles: 50.0,
                },
                StageCycles {
                    name: "shuffle-bit-2".into(),
                    cycles: 200.0,
                },
                StageCycles {
                    name: "dispatch".into(),
                    cycles: 200.0,
                },
            ],
            model_terms: vec![("relay_cycles_per_round".into(), 42.5)],
        }
    }

    #[test]
    fn grouping_matches_paper_tables() {
        assert_eq!(stage_group("quant-mul"), "pre-quant");
        assert_eq!(stage_group("quant-add"), "pre-quant");
        assert_eq!(stage_group("lorenzo"), "lorenzo");
        assert_eq!(stage_group("sign"), "encode");
        assert_eq!(stage_group("max"), "encode");
        assert_eq!(stage_group("get-length"), "encode");
        assert_eq!(stage_group("shuffle-bit-7"), "encode");
        assert_eq!(stage_group("unshuffle-bit-0"), "decode");
        assert_eq!(stage_group("apply-sign"), "decode");
        assert_eq!(stage_group("prefix-sum"), "decode");
        assert_eq!(stage_group("dequant-mul"), "decode");
        assert_eq!(stage_group("dispatch"), "other");
        assert_eq!(stage_group("unattributed"), "other");
    }

    #[test]
    fn grouped_aggregates_in_order() {
        let groups = sample().grouped();
        assert_eq!(
            groups,
            vec![
                ("pre-quant", 400.0),
                ("lorenzo", 150.0),
                ("encode", 250.0),
                ("other", 200.0),
            ]
        );
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let report = sample();
        let doc = json::parse(&report.to_json().to_pretty()).unwrap();
        let back = ProfileReport::from_json(&doc).unwrap();
        assert_eq!(back.strategy, "pipeline");
        assert_eq!(back.mesh_rows, 2);
        assert_eq!(back.mesh_cols, 8);
        assert_eq!(back.finish_cycle, 10_000.0);
        assert_eq!(back.total_busy_cycles, 1000.0);
        assert_eq!(back.stages, report.stages);
        assert_eq!(back.model_terms, report.model_terms);
        assert!((back.attributed_cycles() - back.total_busy_cycles).abs() < 1e-9);
    }

    #[test]
    fn shares_in_json_sum_to_one() {
        let doc = sample().to_json();
        let total: f64 = doc
            .get("stages")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| s.get("share").unwrap().as_f64().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_all_sections() {
        let text = sample().render_table();
        assert!(text.contains("pipeline on 2x8 mesh"));
        assert!(text.contains("quant-mul"));
        assert!(text.contains("pre-quant"));
        assert!(text.contains("relay_cycles_per_round"));
    }

    #[test]
    fn empty_report_renders_without_division_by_zero() {
        let report = ProfileReport::default();
        let text = report.render_table();
        assert!(text.contains("utilization"));
        assert_eq!(report.grouped(), vec![]);
        let doc = report.to_json();
        assert_eq!(doc.get("total_busy_cycles").unwrap().as_f64(), Some(0.0));
    }
}
