//! Per-stage cycle-attribution reports.
//!
//! A [`ProfileReport`] is the machine- and human-readable summary of one
//! simulated run: the headline simulator statistics, per-kernel-stage busy
//! time (every busy tick is attributed to exactly one stage, so the stage
//! column sums to `total_busy_ticks` *exactly* — integer ticks, no float
//! accumulation error), and optional analytic cost terms (the paper's Eq. 2
//! relay overhead and Eq. 3 pipeline cost model, which stay `f64` because
//! they are closed-form estimates, not measured time).
//!
//! All measured time is carried as integer ticks ([`TICKS_PER_CYCLE`] ticks
//! per simulator cycle, mirroring `wse_sim::TICKS_PER_CYCLE`); the rendered
//! table derives cycles for human eyes.
//!
//! Stage names follow `SubStageKind::name()` in `ceresz-core`
//! (`"quant-mul"`, `"lorenzo"`, `"shuffle-bit-3"`, …) plus the simulator's
//! pseudo-stages (`"dispatch"` for task overhead, `"unattributed"` for
//! cycles charged outside any labelled stage). [`stage_group`] folds these
//! into the paper's reporting granularity (Tables 1–3): *pre-quant*,
//! *lorenzo*, *encode*, *decode*.

use crate::json::JsonValue;

/// Fixed-point ticks per simulator cycle. Kept in sync with
/// `wse_sim::TICKS_PER_CYCLE` (asserted by an integration test in
/// `ceresz-wse`); `telemetry` has no dependency on the simulator crate.
pub const TICKS_PER_CYCLE: u64 = 1_000;

/// Render integer ticks as a decimal cycle count with trailing zeros
/// trimmed (`5078400` ticks → `"5078.4"`, `11000` → `"11"`).
#[must_use]
pub fn fmt_ticks_as_cycles(ticks: u64) -> String {
    let whole = ticks / TICKS_PER_CYCLE;
    let frac = ticks % TICKS_PER_CYCLE;
    if frac == 0 {
        format!("{whole}")
    } else {
        let s = format!("{frac:03}");
        format!("{whole}.{}", s.trim_end_matches('0'))
    }
}

/// Busy time attributed to one kernel stage, summed over all PEs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCycles {
    /// Stage name (`SubStageKind::name()` or a simulator pseudo-stage).
    pub name: String,
    /// Total busy ticks charged while this stage was active.
    pub ticks: u64,
}

/// Map a stage name onto the paper's Tables 1–3 reporting groups.
#[must_use]
pub fn stage_group(stage: &str) -> &'static str {
    match stage {
        "quant-mul" | "quant-add" => "pre-quant",
        "lorenzo" => "lorenzo",
        "sign" | "max" | "get-length" => "encode",
        s if s.starts_with("shuffle-bit") => "encode",
        s if s.starts_with("unshuffle-bit") => "decode",
        "apply-sign" | "prefix-sum" | "dequant-mul" => "decode",
        _ => "other",
    }
}

/// Canonical group order for tables and JSON.
pub const GROUP_ORDER: [&str; 5] = ["pre-quant", "lorenzo", "encode", "decode", "other"];

/// Machine-readable profile of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Which mapping produced the run (`"row-parallel"`, `"pipeline"`, …).
    pub strategy: String,
    /// Mesh rows the strategy occupied.
    pub mesh_rows: usize,
    /// Mesh columns the strategy occupied.
    pub mesh_cols: usize,
    /// Tick at which the last task finished.
    pub finish_ticks: u64,
    /// Sum of busy ticks over all PEs.
    pub total_busy_ticks: u64,
    /// Tasks executed across all PEs.
    pub total_tasks: u64,
    /// Wavelets moved across the fabric.
    pub total_wavelets: u64,
    /// PEs that ran at least one task.
    pub active_pes: usize,
    /// Mean busy fraction of active PEs over the run.
    pub utilization: f64,
    /// Per-stage busy ticks; sums to `total_busy_ticks` exactly.
    pub stages: Vec<StageCycles>,
    /// Analytic cost terms (Eq. 2 relay overhead, Eq. 3 pipeline terms, …)
    /// keyed by name. Model estimates, not measured time — stay `f64`.
    pub model_terms: Vec<(String, f64)>,
}

impl ProfileReport {
    /// Sum of all attributed stage ticks. Equals `total_busy_ticks` exactly
    /// for a report built from a simulated run.
    #[must_use]
    pub fn attributed_ticks(&self) -> u64 {
        self.stages.iter().map(|s| s.ticks).sum()
    }

    /// Aggregate per-stage ticks into the paper's groups, in
    /// [`GROUP_ORDER`]; groups with zero time are omitted.
    #[must_use]
    pub fn grouped(&self) -> Vec<(&'static str, u64)> {
        GROUP_ORDER
            .iter()
            .filter_map(|group| {
                let ticks: u64 = self
                    .stages
                    .iter()
                    .filter(|s| stage_group(&s.name) == *group)
                    .map(|s| s.ticks)
                    .sum();
                (ticks > 0).then_some((*group, ticks))
            })
            .collect()
    }

    /// Serialize to the `profile.json` document shape. All measured-time
    /// fields are exact integer tick counts; `share` values are derived
    /// ratios and remain floating point.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        use JsonValue as J;
        let stages = J::Arr(
            self.stages
                .iter()
                .map(|s| {
                    J::obj(vec![
                        ("name", J::Str(s.name.clone())),
                        ("group", J::Str(stage_group(&s.name).into())),
                        ("ticks", J::Num(s.ticks as f64)),
                        (
                            "share",
                            J::Num(if self.total_busy_ticks > 0 {
                                s.ticks as f64 / self.total_busy_ticks as f64
                            } else {
                                0.0
                            }),
                        ),
                    ])
                })
                .collect(),
        );
        let groups = J::Obj(
            self.grouped()
                .into_iter()
                .map(|(g, t)| (g.to_owned(), J::Num(t as f64)))
                .collect(),
        );
        let model = J::Obj(
            self.model_terms
                .iter()
                .map(|(k, v)| (k.clone(), J::Num(*v)))
                .collect(),
        );
        J::obj(vec![
            ("strategy", J::Str(self.strategy.clone())),
            (
                "mesh",
                J::obj(vec![
                    ("rows", J::Num(self.mesh_rows as f64)),
                    ("cols", J::Num(self.mesh_cols as f64)),
                ]),
            ),
            ("ticks_per_cycle", J::Num(TICKS_PER_CYCLE as f64)),
            ("finish_ticks", J::Num(self.finish_ticks as f64)),
            ("total_busy_ticks", J::Num(self.total_busy_ticks as f64)),
            ("total_tasks", J::Num(self.total_tasks as f64)),
            ("total_wavelets", J::Num(self.total_wavelets as f64)),
            ("active_pes", J::Num(self.active_pes as f64)),
            ("utilization", J::Num(self.utilization)),
            ("stages", stages),
            ("groups", groups),
            ("model_terms", model),
        ])
    }

    /// Parse a document produced by [`Self::to_json`]. Used by the golden tests
    /// and by tooling that post-processes `profile.json`.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let ticks = |key: &str| -> Result<u64, String> {
            let v = num(key)?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("field '{key}' is not an integer tick count: {v}"));
            }
            Ok(v as u64)
        };
        let mesh = doc.get("mesh").ok_or("missing 'mesh'")?;
        let stages = doc
            .get("stages")
            .and_then(JsonValue::as_arr)
            .ok_or("missing 'stages' array")?
            .iter()
            .map(|s| {
                let t = s
                    .get("ticks")
                    .and_then(JsonValue::as_f64)
                    .ok_or("stage missing 'ticks'")?;
                if t < 0.0 || t.fract() != 0.0 {
                    return Err(format!("stage 'ticks' is not an integer: {t}"));
                }
                Ok(StageCycles {
                    name: s
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("stage missing 'name'")?
                        .to_owned(),
                    ticks: t as u64,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let model_terms = doc
            .get("model_terms")
            .and_then(JsonValue::as_obj)
            .map(|pairs| {
                pairs
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                    .collect()
            })
            .unwrap_or_default();
        Ok(Self {
            strategy: doc
                .get("strategy")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_owned(),
            mesh_rows: mesh.get("rows").and_then(JsonValue::as_f64).unwrap_or(0.0) as usize,
            mesh_cols: mesh.get("cols").and_then(JsonValue::as_f64).unwrap_or(0.0) as usize,
            finish_ticks: ticks("finish_ticks")?,
            total_busy_ticks: ticks("total_busy_ticks")?,
            total_tasks: num("total_tasks")? as u64,
            total_wavelets: num("total_wavelets")? as u64,
            active_pes: num("active_pes")? as usize,
            utilization: num("utilization")?,
            stages,
            model_terms,
        })
    }

    /// Render the human-readable `--profile` table. Time columns show
    /// cycles derived exactly from the stored ticks.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} on {}x{} mesh\n",
            self.strategy, self.mesh_rows, self.mesh_cols
        ));
        out.push_str(&format!(
            "  finish cycle {:>14}   busy cycles {:>14}\n",
            fmt_ticks_as_cycles(self.finish_ticks),
            fmt_ticks_as_cycles(self.total_busy_ticks)
        ));
        out.push_str(&format!(
            "  tasks {:>10}   wavelets {:>10}   active PEs {:>6}   utilization {:>6.1}%\n",
            self.total_tasks,
            self.total_wavelets,
            self.active_pes,
            self.utilization * 100.0
        ));
        out.push_str("\n  stage               group        cycles        share\n");
        out.push_str("  ------------------  ---------  ------------  -------\n");
        for s in &self.stages {
            let share = if self.total_busy_ticks > 0 {
                s.ticks as f64 / self.total_busy_ticks as f64 * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<18}  {:<9}  {:>12}  {:>6.2}%\n",
                s.name,
                stage_group(&s.name),
                fmt_ticks_as_cycles(s.ticks),
                share
            ));
        }
        let grouped = self.grouped();
        if !grouped.is_empty() {
            out.push_str("\n  group summary (paper Tables 1-3 granularity):\n");
            for (g, t) in grouped {
                let share = if self.total_busy_ticks > 0 {
                    t as f64 / self.total_busy_ticks as f64 * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {g:<18}  {:>12}  {share:>6.2}%\n",
                    fmt_ticks_as_cycles(t)
                ));
            }
        }
        if !self.model_terms.is_empty() {
            out.push_str("\n  analytic model terms:\n");
            for (k, v) in &self.model_terms {
                out.push_str(&format!("  {k:<28}  {v:>14.1}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> ProfileReport {
        ProfileReport {
            strategy: "pipeline".into(),
            mesh_rows: 2,
            mesh_cols: 8,
            finish_ticks: 10_000 * TICKS_PER_CYCLE,
            total_busy_ticks: 1000 * TICKS_PER_CYCLE,
            total_tasks: 12,
            total_wavelets: 40,
            active_pes: 16,
            utilization: 0.0625,
            stages: vec![
                StageCycles {
                    name: "quant-mul".into(),
                    ticks: 300_000,
                },
                StageCycles {
                    name: "quant-add".into(),
                    ticks: 100_000,
                },
                StageCycles {
                    name: "lorenzo".into(),
                    ticks: 150_000,
                },
                StageCycles {
                    name: "sign".into(),
                    ticks: 50_000,
                },
                StageCycles {
                    name: "shuffle-bit-2".into(),
                    ticks: 200_000,
                },
                StageCycles {
                    name: "dispatch".into(),
                    ticks: 200_000,
                },
            ],
            model_terms: vec![("relay_cycles_per_round".into(), 42.5)],
        }
    }

    #[test]
    fn grouping_matches_paper_tables() {
        assert_eq!(stage_group("quant-mul"), "pre-quant");
        assert_eq!(stage_group("quant-add"), "pre-quant");
        assert_eq!(stage_group("lorenzo"), "lorenzo");
        assert_eq!(stage_group("sign"), "encode");
        assert_eq!(stage_group("max"), "encode");
        assert_eq!(stage_group("get-length"), "encode");
        assert_eq!(stage_group("shuffle-bit-7"), "encode");
        assert_eq!(stage_group("unshuffle-bit-0"), "decode");
        assert_eq!(stage_group("apply-sign"), "decode");
        assert_eq!(stage_group("prefix-sum"), "decode");
        assert_eq!(stage_group("dequant-mul"), "decode");
        assert_eq!(stage_group("dispatch"), "other");
        assert_eq!(stage_group("unattributed"), "other");
    }

    #[test]
    fn grouped_aggregates_in_order() {
        let groups = sample().grouped();
        assert_eq!(
            groups,
            vec![
                ("pre-quant", 400_000),
                ("lorenzo", 150_000),
                ("encode", 250_000),
                ("other", 200_000),
            ]
        );
    }

    #[test]
    fn json_roundtrip_preserves_report_exactly() {
        let report = sample();
        let doc = json::parse(&report.to_json().to_pretty()).unwrap();
        let back = ProfileReport::from_json(&doc).unwrap();
        assert_eq!(back.strategy, "pipeline");
        assert_eq!(back.mesh_rows, 2);
        assert_eq!(back.mesh_cols, 8);
        assert_eq!(back.finish_ticks, 10_000 * TICKS_PER_CYCLE);
        assert_eq!(back.total_busy_ticks, 1000 * TICKS_PER_CYCLE);
        assert_eq!(back.stages, report.stages);
        assert_eq!(back.model_terms, report.model_terms);
        assert_eq!(back.attributed_ticks(), back.total_busy_ticks);
    }

    #[test]
    fn from_json_rejects_fractional_ticks() {
        let mut doc = sample().to_json();
        if let JsonValue::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "finish_ticks" {
                    *v = JsonValue::Num(10.5);
                }
            }
        }
        let doc = json::parse(&doc.to_pretty()).unwrap();
        let err = ProfileReport::from_json(&doc).unwrap_err();
        assert!(err.contains("finish_ticks"), "{err}");
    }

    #[test]
    fn shares_in_json_sum_to_one() {
        let doc = sample().to_json();
        let total: f64 = doc
            .get("stages")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| s.get("share").unwrap().as_f64().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_time_fields_are_integers() {
        let doc = sample().to_json();
        for key in ["finish_ticks", "total_busy_ticks", "ticks_per_cycle"] {
            let v = doc.get(key).unwrap().as_f64().unwrap();
            assert_eq!(v.fract(), 0.0, "{key} = {v}");
        }
        for s in doc.get("stages").unwrap().as_arr().unwrap() {
            let v = s.get("ticks").unwrap().as_f64().unwrap();
            assert_eq!(v.fract(), 0.0);
        }
    }

    #[test]
    fn cycle_formatting_trims_trailing_zeros() {
        assert_eq!(fmt_ticks_as_cycles(0), "0");
        assert_eq!(fmt_ticks_as_cycles(1), "0.001");
        assert_eq!(fmt_ticks_as_cycles(11_000), "11");
        assert_eq!(fmt_ticks_as_cycles(5_078_400), "5078.4");
        assert_eq!(fmt_ticks_as_cycles(59_250), "59.25");
    }

    #[test]
    fn table_renders_all_sections() {
        let text = sample().render_table();
        assert!(text.contains("pipeline on 2x8 mesh"));
        assert!(text.contains("quant-mul"));
        assert!(text.contains("pre-quant"));
        assert!(text.contains("relay_cycles_per_round"));
        // Cycle columns derive from ticks: 300_000 ticks = 300 cycles.
        assert!(text.contains("300"), "{text}");
    }

    #[test]
    fn empty_report_renders_without_division_by_zero() {
        let report = ProfileReport::default();
        let text = report.render_table();
        assert!(text.contains("utilization"));
        assert_eq!(report.grouped(), vec![]);
        let doc = report.to_json();
        assert_eq!(doc.get("total_busy_ticks").unwrap().as_f64(), Some(0.0));
    }
}
