//! A minimal JSON document model with a writer and a recursive-descent
//! parser.
//!
//! The workspace has no serde in its dependency tree (the build environment
//! is offline), yet the profiling exporters need to emit — and the golden
//! tests need to re-read — Chrome-trace and `profile.json` documents. This
//! module covers exactly that: objects preserve insertion order, numbers are
//! `f64`, and the parser accepts the strict JSON grammar (no comments, no
//! trailing commas).

use std::fmt::Write as _;

/// One JSON value. Objects keep insertion order so emitted documents are
/// deterministic and diffs stay readable.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always emitted shortest-round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object constructor from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Look up a key in an object; `None` for absent keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside a `Num`; `None` otherwise.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside a `Str`; `None` otherwise.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items of an `Arr`; `None` otherwise.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs of an `Obj`; `None` otherwise.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(out, *n),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            JsonValue::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_string(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

/// JSON has no NaN/Infinity; clamp them to null per the common convention.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be followed
                            // by a low surrogate escape.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("non-hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = JsonValue::obj(vec![
            ("name", JsonValue::Str("quant-mul".into())),
            ("cycles", JsonValue::Num(156.2)),
            ("count", JsonValue::Num(3.0)),
            (
                "tags",
                JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn escapes_survive_roundtrip() {
        let doc = JsonValue::Str("line\nbreak \"quoted\" back\\slash \u{1}".into());
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "d"}, "e": []}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        assert_eq!(v.get("e").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(JsonValue::Num(1234.0).to_compact(), "1234");
        assert_eq!(JsonValue::Num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_compact(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pair_decodes() {
        assert_eq!(
            parse("\"\\uD83D\\uDE00\"").unwrap(),
            JsonValue::Str("\u{1F600}".into())
        );
    }
}
