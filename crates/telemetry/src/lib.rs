//! Workspace-wide profiling primitives for the CereSZ reproduction.
//!
//! The crate is deliberately dependency-free and cheap when unused: the
//! central [`Recorder`] is a cloneable handle that is a no-op unless
//! explicitly enabled, so library code can be instrumented unconditionally
//! and callers opt in per run. Three kinds of measurement are supported:
//!
//! * **counters** — monotonically accumulated `u64` totals (wavelets sent,
//!   bytes emitted, …);
//! * **histograms** — summaries (count/sum/min/max plus log2 buckets) of a
//!   stream of samples (block lengths, per-task cycles, …);
//! * **spans** — named intervals, either wall-clock ([`Recorder::wall_span`],
//!   backed by [`std::time::Instant`]) or in simulator cycles
//!   ([`Recorder::record_cycle_span`], where the caller supplies the clock).
//!
//! [`json`] holds the minimal JSON reader/writer the exporters are built on,
//! [`chrome`] emits Chrome/Perfetto `traceEvents` documents, and [`profile`]
//! models the per-stage cycle-attribution report (`profile.json` and the
//! human-readable `--profile` table).

#![forbid(unsafe_code)]
pub mod chrome;
pub mod json;
pub mod profile;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Summary of a sample stream. Buckets are log2: bucket `i` counts samples
/// in `[2^(i-1), 2^i)` (bucket 0 counts samples `< 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
    /// Log2 bucket counts; bucket `i` covers `[2^(i-1), 2^i)`.
    pub log2_buckets: Vec<u64>,
}

impl HistogramSummary {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            log2_buckets: Vec::new(),
        }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let bucket = if v < 1.0 {
            0
        } else {
            1 + v.log2().floor() as usize
        };
        if self.log2_buckets.len() <= bucket {
            self.log2_buckets.resize(bucket + 1, 0);
        }
        self.log2_buckets[bucket] += 1;
    }

    /// Arithmetic mean; 0 for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One recorded interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span label, as passed to `wall_span`/`cycle_span`.
    pub name: String,
    /// Span start, in the span's own clock (µs for wall spans, cycles for
    /// cycle spans).
    pub start: f64,
    /// Span length in the same unit as `start`.
    pub duration: f64,
    /// Which clock `start`/`duration` are measured against.
    pub clock: SpanClock,
}

/// Which clock a [`SpanRecord`] was measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanClock {
    /// Host wall time, microseconds since the recorder was created.
    WallMicros,
    /// Simulator cycles, as supplied by the caller.
    Cycles,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
    spans: Vec<SpanRecord>,
}

/// Point-in-time copy of everything a [`Recorder`] has accumulated.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Every recorded span, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl TelemetrySnapshot {
    /// Render the snapshot as a JSON object (counters, histogram summaries,
    /// and spans), suitable for embedding in `profile.json`.
    #[must_use]
    pub fn to_json(&self) -> json::JsonValue {
        use json::JsonValue as J;
        let counters = J::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), J::Num(*v as f64)))
                .collect(),
        );
        let histograms = J::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        J::obj(vec![
                            ("count", J::Num(h.count as f64)),
                            ("sum", J::Num(h.sum)),
                            ("min", J::Num(if h.count == 0 { 0.0 } else { h.min })),
                            ("max", J::Num(if h.count == 0 { 0.0 } else { h.max })),
                            ("mean", J::Num(h.mean())),
                        ]),
                    )
                })
                .collect(),
        );
        let spans = J::Arr(
            self.spans
                .iter()
                .map(|s| {
                    J::obj(vec![
                        ("name", J::Str(s.name.clone())),
                        ("start", J::Num(s.start)),
                        ("duration", J::Num(s.duration)),
                        (
                            "clock",
                            J::Str(
                                match s.clock {
                                    SpanClock::WallMicros => "wall_us",
                                    SpanClock::Cycles => "cycles",
                                }
                                .into(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        J::obj(vec![
            ("counters", counters),
            ("histograms", histograms),
            ("spans", spans),
        ])
    }
}

/// Cloneable profiling handle. A disabled recorder (the default) never
/// allocates and every recording call is a cheap branch on `None`, so
/// instrumented hot paths cost nothing in ordinary runs.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Recorder {
    /// An enabled recorder.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Inner {
                epoch: Instant::now(),
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
                spans: Vec::new(),
            }))),
        }
    }

    /// A recorder that drops everything (same as `Recorder::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this recorder actually collects (disabled recorders are
    /// free no-ops).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `n` to the named counter.
    pub fn count(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            let mut g = inner.lock().unwrap();
            *g.counters.entry(name.to_owned()).or_insert(0) += n;
        }
    }

    /// Record one sample into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut g = inner.lock().unwrap();
            g.histograms
                .entry(name.to_owned())
                .or_insert_with(HistogramSummary::new)
                .record(value);
        }
    }

    /// Open a wall-clock span; the interval is recorded when the returned
    /// guard drops. For a disabled recorder the guard is inert.
    #[must_use]
    pub fn wall_span(&self, name: &str) -> WallSpan {
        WallSpan {
            recorder: self.clone(),
            name: name.to_owned(),
            started: Instant::now(),
        }
    }

    /// Record a span measured in simulator cycles (caller supplies both
    /// endpoints; `end < start` is clamped to an empty span).
    pub fn record_cycle_span(&self, name: &str, start: f64, end: f64) {
        if let Some(inner) = &self.inner {
            let mut g = inner.lock().unwrap();
            g.spans.push(SpanRecord {
                name: name.to_owned(),
                start,
                duration: (end - start).max(0.0),
                clock: SpanClock::Cycles,
            });
        }
    }

    /// Copy out everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.inner {
            None => TelemetrySnapshot::default(),
            Some(inner) => {
                let g = inner.lock().unwrap();
                TelemetrySnapshot {
                    counters: g.counters.clone(),
                    histograms: g.histograms.clone(),
                    spans: g.spans.clone(),
                }
            }
        }
    }
}

/// Guard returned by [`Recorder::wall_span`]; records the elapsed interval
/// on drop.
pub struct WallSpan {
    recorder: Recorder,
    name: String,
    started: Instant,
}

impl Drop for WallSpan {
    fn drop(&mut self) {
        if let Some(inner) = &self.recorder.inner {
            let mut g = inner.lock().unwrap();
            let start = self.started.duration_since(g.epoch).as_secs_f64() * 1e6;
            let duration = self.started.elapsed().as_secs_f64() * 1e6;
            g.spans.push(SpanRecord {
                name: std::mem::take(&mut self.name),
                start,
                duration,
                clock: SpanClock::WallMicros,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.count("wavelets", 10);
        r.observe("block_len", 32.0);
        r.record_cycle_span("stage", 0.0, 100.0);
        drop(r.wall_span("host"));
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let r = Recorder::enabled();
        let r2 = r.clone();
        r.count("sends", 3);
        r2.count("sends", 4);
        assert_eq!(r.snapshot().counters["sends"], 7);
    }

    #[test]
    fn histogram_summary_tracks_bounds_and_mean() {
        let r = Recorder::enabled();
        for v in [1.0, 2.0, 3.0, 10.0] {
            r.observe("cycles", v);
        }
        let snap = r.snapshot();
        let h = &snap.histograms["cycles"];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 10.0);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn log2_buckets_partition_samples() {
        let mut h = HistogramSummary::new();
        for v in [0.5, 1.0, 1.9, 2.0, 3.9, 4.0] {
            h.record(v);
        }
        // [<1]=1, [1,2)=2, [2,4)=2, [4,8)=1
        assert_eq!(h.log2_buckets, vec![1, 2, 2, 1]);
    }

    #[test]
    fn cycle_spans_clamp_negative_durations() {
        let r = Recorder::enabled();
        r.record_cycle_span("bad", 100.0, 50.0);
        let snap = r.snapshot();
        assert_eq!(snap.spans[0].duration, 0.0);
        assert_eq!(snap.spans[0].clock, SpanClock::Cycles);
    }

    #[test]
    fn wall_span_records_on_drop() {
        let r = Recorder::enabled();
        {
            let _span = r.wall_span("compress");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "compress");
        assert_eq!(snap.spans[0].clock, SpanClock::WallMicros);
        assert!(snap.spans[0].duration >= 0.0);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let r = Recorder::enabled();
        r.count("wavelets", 5);
        r.observe("len", 8.0);
        r.record_cycle_span("quant", 10.0, 20.0);
        let doc = r.snapshot().to_json();
        let text = doc.to_pretty();
        let back = json::parse(&text).unwrap();
        assert_eq!(
            back.get("counters")
                .unwrap()
                .get("wavelets")
                .unwrap()
                .as_f64(),
            Some(5.0)
        );
        assert_eq!(
            back.get("spans").unwrap().as_arr().unwrap()[0]
                .get("duration")
                .unwrap()
                .as_f64(),
            Some(10.0)
        );
    }
}
