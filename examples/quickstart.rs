//! Quickstart: compress a scientific field with an error bound, decompress,
//! and verify the guarantee.
//!
//! Run: `cargo run --release --example quickstart`

use ceresz::core::{verify_error_bound, CereszConfig, Codec, ErrorBound};
use ceresz::data::{generate_field, DatasetId};

fn main() {
    // A NYX-like cosmology temperature cube (synthetic, deterministic).
    let field = generate_field(DatasetId::Nyx, 2, 7);
    println!(
        "field: {} ({} values, {} MB)",
        field.name,
        field.len(),
        field.bytes() / 1_000_000
    );

    // Value-range-relative bound: every point within 0.1% of the range.
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let t0 = std::time::Instant::now();
    let codec = Codec::new(cfg);
    let compressed = codec.compress(&field.data).expect("finite data compresses");
    let dt = t0.elapsed();

    println!(
        "compressed: {} -> {} bytes (ratio {:.2}x) in {:.1} ms ({:.2} GB/s host-side)",
        compressed.stats.original_bytes,
        compressed.stats.compressed_bytes,
        compressed.ratio(),
        dt.as_secs_f64() * 1e3,
        compressed.stats.original_bytes as f64 / dt.as_secs_f64() / 1e9,
    );
    println!(
        "blocks: {} total, {} zero-block fast path, max fixed length {} bits",
        compressed.stats.n_blocks, compressed.stats.zero_blocks, compressed.stats.max_fixed_length
    );

    let restored = codec
        .decompress(&compressed.data)
        .expect("stream decompresses");
    assert!(verify_error_bound(
        &field.data,
        &restored,
        compressed.stats.eps
    ));
    println!(
        "verified: max error {:.3e} <= eps {:.3e}",
        ceresz::core::max_abs_error(&field.data, &restored),
        compressed.stats.eps
    );
    println!(
        "quality: PSNR {:.2} dB",
        ceresz::quality::psnr(&field.data, &restored)
    );
}
