//! Inline compression for a Reverse-Time-Migration workload — the paper's
//! motivating example (§1: RTM "can generate as much as 2,800 TB of data ...
//! in a single time-stamp"). Seismic snapshots stream out of the solver;
//! each is compressed on the fly and the aggregate footprint reported.
//!
//! Run: `cargo run --release --example rtm_inline`

use ceresz::core::{CereszConfig, Codec, ErrorBound};
use ceresz::data::{generate_field, DatasetId};
use ceresz::wse::throughput::WaferConfig;

fn main() {
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let wafer = WaferConfig::cs2_square(512);
    let mut raw_total = 0usize;
    let mut compressed_total = 0usize;
    println!("inline RTM snapshot compression (REL 1e-3):");
    println!(
        "{:<16} {:>9} {:>12} {:>8} {:>14}",
        "snapshot", "zeros", "bytes", "ratio", "wafer GB/s"
    );
    for i in 0..3 {
        let snap = generate_field(DatasetId::Rtm, i, 11);
        let c = Codec::new(cfg)
            .compress(&snap.data)
            .expect("snapshot compresses");
        // What the wafer would sustain on this snapshot (analytic model fed
        // by real kernel cycles).
        let rep = wafer
            .compression_report_replicated(&snap.data, &cfg, 7, 64)
            .expect("report");
        println!(
            "{:<16} {:>8.1}% {:>12} {:>7.2}x {:>14.1}",
            snap.name,
            100.0 * c.stats.zero_block_fraction(),
            c.stats.compressed_bytes,
            c.ratio(),
            rep.gbps
        );
        raw_total += c.stats.original_bytes;
        compressed_total += c.stats.compressed_bytes;
    }
    println!(
        "aggregate: {} MB -> {} MB ({:.2}x); at 2,800 TB/timestamp that is {:.0} TB on disk",
        raw_total / 1_000_000,
        compressed_total / 1_000_000,
        raw_total as f64 / compressed_total as f64,
        2_800.0 * compressed_total as f64 / raw_total as f64,
    );
}
