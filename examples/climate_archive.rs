//! Archiving a climate dataset: sweep error bounds over every CESM-ATM
//! field and print the rate–distortion table (bit rate vs PSNR/SSIM) an
//! archivist would use to pick a bound.
//!
//! Run: `cargo run --release --example climate_archive`

use ceresz::core::{CereszConfig, Codec, ErrorBound, Parallelism};
use ceresz::data::{generate_field, DatasetId};
use ceresz::quality::{psnr, ssim_2d, RateDistortionPoint, SsimConfig};

fn main() {
    let ds = DatasetId::CesmAtm;
    let spec = ds.spec();
    println!(
        "CESM-ATM archive sweep ({} synthetic fields)",
        spec.synthetic_fields.len()
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "field", "REL", "bits/val", "ratio", "PSNR dB", "SSIM"
    );
    let (rows, cols) = (spec.synthetic_dims[0], spec.synthetic_dims[1]);
    for field_idx in 0..spec.synthetic_fields.len() {
        let field = generate_field(ds, field_idx, 3);
        for rel in [1e-2, 1e-3, 1e-4] {
            let cfg = CereszConfig::new(ErrorBound::Rel(rel));
            let c = Codec::new(cfg)
                .compress(&field.data)
                .expect("field compresses");
            let r = Codec::decompressor(Parallelism::Rayon)
                .decompress(&c.data)
                .expect("stream decompresses");
            let point = RateDistortionPoint::new(
                rel,
                field.len(),
                c.stats.compressed_bytes,
                psnr(&field.data, &r),
                ssim_2d(&field.data, &r, rows, cols, &SsimConfig::default()),
            );
            println!(
                "{:<10} {:>8.0e} {:>10.3} {:>10.2} {:>10.2} {:>8.4}",
                field.name, rel, point.bit_rate, point.ratio, point.psnr, point.ssim
            );
        }
    }
    println!("\nHigher REL = fewer bits per value at lower fidelity; pick the knee.");
}
