//! Pipeline planning walkthrough: sample the data (§4.2's 5 % sampling),
//! decompose the compression into sub-stages, balance them across PEs with
//! Algorithm 1, and pick the pipeline length the analytic model (Eq. 4)
//! prefers.
//!
//! Run: `cargo run --release --example tuning_pipeline`

use ceresz::core::plan::{
    max_feasible_pipeline_length, CompressionPlan, MeshShape, PipelineModel, StageCostModel,
};
use ceresz::core::ErrorBound;
use ceresz::data::{generate_field, DatasetId};

fn main() {
    let field = generate_field(DatasetId::CesmAtm, 0, 9);
    let model = StageCostModel::calibrated();
    let bound = ErrorBound::Rel(1e-4);

    // Sample-based plan for a 4-PE pipeline.
    let plan = CompressionPlan::from_sampled(&field.data, bound, 32, 4, &model);
    println!(
        "sampled fixed length: {} bits; total C = {:.0} cycles/block",
        plan.fixed_length, plan.total_cycles
    );
    println!("\nAlgorithm 1 distribution over 4 PEs:");
    for (pe, group) in plan.groups.iter().enumerate() {
        let names: Vec<String> = group.iter().map(|&i| plan.stages[i].kind.name()).collect();
        let cycles: f64 = group.iter().map(|&i| plan.stages[i].cycles).sum();
        println!("  PE {pe}: {:>7.0} cycles  [{}]", cycles, names.join(", "));
    }
    println!(
        "bottleneck: {:.0} cycles (ideal C/4 = {:.0})",
        plan.bottleneck_cycles(),
        plan.total_cycles / 4.0
    );

    let cycles: Vec<f64> = plan.stages.iter().map(|s| s.cycles).collect();
    println!(
        "\nmax feasible pipeline length = floor(C / t_mul) = {}",
        max_feasible_pipeline_length(&cycles)
    );

    // What Eq. 4 says about length selection on a 512x512 wafer.
    let pipe = PipelineModel::cs2_defaults(32);
    let mesh = MeshShape::square(512);
    let n_blocks = 10_000_000usize;
    println!("\nEq. 4 total cycles on 512x512 PEs ({n_blocks} blocks):");
    for len in [1usize, 2, 4, 8] {
        let total = pipe.total_cycles(n_blocks, mesh, len, plan.total_cycles);
        println!("  length {len}: {total:.3e} cycles");
    }
    let best = pipe.optimal_pipeline_length(n_blocks, mesh, plan.total_cycles, 8);
    println!("optimal length: {best} (the paper's finding: 1)");
}
