//! Watch the three parallelization strategies of the paper (§4) execute on
//! the event-stepped wafer simulator and produce bit-identical streams.
//!
//! Run: `cargo run --release --example wse_mapping`

use ceresz::core::{CereszConfig, Codec, ErrorBound};
use ceresz::data::{generate_field, DatasetId};
use ceresz::wse::{execute, SimOptions, StrategyKind};

fn main() {
    // A slice of the QMCPack orbital file keeps the event simulation snappy.
    let field = generate_field(DatasetId::QmcPack, 0, 5);
    let data = &field.data[..32 * 512];
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let reference = Codec::new(cfg).compress(data).expect("host compression");
    println!(
        "reference (host): {} bytes, ratio {:.2}",
        reference.data.len(),
        reference.ratio()
    );
    println!(
        "\n{:<44} {:>8} {:>12} {:>10} {:>8}",
        "strategy", "PEs", "cycles", "util", "same?"
    );
    for strategy in [
        StrategyKind::RowParallel { rows: 8 },
        StrategyKind::Pipeline {
            rows: 4,
            pipeline_length: 4,
        },
        StrategyKind::MultiPipeline {
            rows: 4,
            pipeline_length: 2,
            pipelines_per_row: 4,
        },
    ] {
        let run = execute(strategy, data, &cfg, &SimOptions::default()).expect("simulation runs");
        println!(
            "{:<44} {:>8} {:>12.0} {:>9.1}% {:>8}",
            format!("{strategy:?}"),
            strategy.pes(),
            run.stats.finish_cycle,
            100.0 * run.stats.utilization(),
            if run.compressed.data == reference.data {
                "yes"
            } else {
                "NO!"
            }
        );
        assert_eq!(run.compressed.data, reference.data);
    }
    println!("\nEvery strategy reproduces the host stream bit for bit.");
}
