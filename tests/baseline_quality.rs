//! Cross-compressor quality invariants on the synthetic datasets: every
//! codec honors its bound everywhere, and the paper's qualitative ratio
//! ordering holds.

use baselines::cusz::CuSz;
use baselines::cuszp::CuSzp;
use baselines::sz3::Sz3;
use baselines::szp::Szp;
use baselines::traits::Codec;
use ceresz::core::{verify_error_bound, CereszConfig, ErrorBound};
use ceresz::data::{generate_field, DatasetId, ALL_DATASETS};

fn subsample(ds: DatasetId) -> (Vec<f32>, Vec<usize>) {
    let f = generate_field(ds, 0, 42);
    // Keep a prefix with consistent dims: drop to 1-D for speed.
    let n = f.len().min(100_000);
    (f.data[..n].to_vec(), vec![n])
}

#[test]
fn all_codecs_honor_the_bound_on_all_datasets() {
    let szp = Szp::default();
    let cuszp = CuSzp::default();
    let sz3 = Sz3;
    let cusz = CuSz;
    let codecs: [&dyn Codec; 4] = [&szp, &cuszp, &sz3, &cusz];
    for ds in ALL_DATASETS {
        let (data, dims) = subsample(ds);
        for codec in codecs {
            let c = codec.compress(&data, &dims, ErrorBound::Rel(1e-3)).unwrap();
            let r = codec.decompress(&c).unwrap();
            assert_eq!(r.len(), data.len(), "{ds:?} {}", codec.name());
            assert!(
                verify_error_bound(&data, &r, c.eps),
                "{ds:?} {} violated its bound",
                codec.name()
            );
        }
    }
}

#[test]
fn ratio_ordering_matches_the_paper() {
    // Table 5's qualitative findings on multi-dimensional smooth fields:
    // SZ highest; SZp ≥ cuSZp (directory overhead); CereSZ below SZp
    // (4-byte headers); cuSZ competitive with CereSZ.
    let field = generate_field(DatasetId::CesmAtm, 0, 42);
    let bound = ErrorBound::Rel(1e-2);
    let sz = Sz3
        .compress(&field.data, &field.dims, bound)
        .unwrap()
        .ratio();
    let szp = Szp::default()
        .compress(&field.data, &field.dims, bound)
        .unwrap()
        .ratio();
    let cuszp = CuSzp::default()
        .compress(&field.data, &field.dims, bound)
        .unwrap()
        .ratio();
    let ceresz = ceresz::core::Codec::new(CereszConfig::new(bound))
        .compress(&field.data)
        .unwrap()
        .ratio();
    assert!(sz > szp, "SZ {sz} !> SZp {szp}");
    assert!(szp >= cuszp, "SZp {szp} !>= cuSZp {cuszp}");
    assert!(szp > ceresz, "SZp {szp} !> CereSZ {ceresz}");
}

#[test]
fn prequantization_family_shares_reconstructions() {
    // §5.4: CereSZ, SZp, and cuSZp differ only in encoding, so their
    // reconstructions are identical under the same absolute bound.
    let field = generate_field(DatasetId::Nyx, 3, 42);
    let data = &field.data[..32 * 2000];
    let eps = 0.5e3; // absolute, to sidestep range-resolution differences
    let bound = ErrorBound::Abs(eps);
    let ceresz = ceresz::core::Codec::new(CereszConfig::new(bound))
        .compress(data)
        .unwrap();
    let ceresz_rec = ceresz::core::Codec::decompressor(ceresz::core::Parallelism::Serial)
        .decompress(&ceresz.data)
        .unwrap();
    let szp = Szp::default();
    let szp_rec = szp
        .decompress(&szp.compress(data, &[data.len()], bound).unwrap())
        .unwrap();
    let cuszp = CuSzp::default();
    let cuszp_rec = cuszp
        .decompress(&cuszp.compress(data, &[data.len()], bound).unwrap())
        .unwrap();
    assert_eq!(ceresz_rec, szp_rec);
    assert_eq!(ceresz_rec, cuszp_rec);
}

#[test]
fn zero_block_ceilings_match_header_widths() {
    // CereSZ caps at 32x (4-byte headers), SZp at 128x (1-byte headers) for
    // all-zero data — §5.3's explanation of Table 5's ceilings.
    let data = vec![0f32; 32 * 4096];
    let bound = ErrorBound::Abs(1e-3);
    let ceresz = ceresz::core::Codec::new(CereszConfig::new(bound))
        .compress(&data)
        .unwrap();
    assert!(
        (ceresz.ratio() - 32.0).abs() < 1.0,
        "CereSZ {}",
        ceresz.ratio()
    );
    let szp = Szp::default()
        .compress(&data, &[data.len()], bound)
        .unwrap();
    assert!((szp.ratio() - 128.0).abs() < 4.0, "SZp {}", szp.ratio());
}

#[test]
fn sz_throughput_cost_shows_in_work_done() {
    // Not a wall-clock benchmark (CI-safe): SZ must do strictly more
    // entropy-coding work — its stream on rough data is *smaller*, while
    // block codecs trade ratio for speed. Verifies the rate side of the
    // throughput/ratio trade-off the paper describes.
    let field = generate_field(DatasetId::Hacc, 0, 42);
    let data = &field.data[..200_000];
    let bound = ErrorBound::Rel(1e-3);
    let sz = Sz3.compress(data, &[data.len()], bound).unwrap();
    let szp = Szp::default().compress(data, &[data.len()], bound).unwrap();
    assert!(sz.bytes.len() < szp.bytes.len());
}
