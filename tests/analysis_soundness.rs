//! Static-analyzer soundness across the strategy × shape sweep.
//!
//! For every shipping mapping the static performance analyzer
//! (`wse_verify::analysis`) must produce bounds the dynamic run can never
//! escape: per-link worst-case load ≥ flight-recorded occupancy, the
//! critical-path lower bound ≤ the simulated makespan, the SRAM watermark ≥
//! the observed peak, and the channel-dependency check must *prove* the
//! mapping deadlock-free. `ceresz lint --analyze --all-strategies` sweeps
//! all 32 EXPERIMENTS.md shapes in CI; this test pins a representative
//! subset (every strategy family, 1-row and multi-row shapes) in the
//! regular suite.

use ceresz::core::{CereszConfig, ErrorBound};
use ceresz::wse::{
    analyze_mapping, check_soundness, mapping_manifest, observe, SimOptions, StrategyKind,
};

fn wavy(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.013).sin() * 10.0 + (i as f32 * 0.0041).cos() * 3.0)
        .collect()
}

fn shapes() -> Vec<StrategyKind> {
    vec![
        StrategyKind::RowParallel { rows: 1 },
        StrategyKind::RowParallel { rows: 4 },
        StrategyKind::RowParallel { rows: 16 },
        StrategyKind::Pipeline {
            rows: 1,
            pipeline_length: 4,
        },
        StrategyKind::Pipeline {
            rows: 2,
            pipeline_length: 8,
        },
        StrategyKind::MultiPipeline {
            rows: 1,
            pipeline_length: 1,
            pipelines_per_row: 4,
        },
        StrategyKind::MultiPipeline {
            rows: 2,
            pipeline_length: 2,
            pipelines_per_row: 3,
        },
        StrategyKind::MultiPipeline {
            rows: 2,
            pipeline_length: 4,
            pipelines_per_row: 2,
        },
    ]
}

#[test]
fn static_bounds_dominate_the_observed_run_for_every_shape() {
    let data = wavy(32 * 128);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let options = SimOptions::default().with_flight_window(1024);
    for strategy in shapes() {
        let manifest = mapping_manifest(&data, &cfg, strategy).unwrap();
        let profile = analyze_mapping(&manifest);
        assert!(
            profile.is_deadlock_free(),
            "{}: deadlock-freedom not proven: {:?}",
            manifest.name,
            profile.deadlock
        );
        let rep = observe(&strategy, &data, &cfg, &options).unwrap();
        let sound = check_soundness(&profile, &rep.stats, &rep.flight, &rep.mem_peak_bytes);
        assert!(
            sound.is_sound(),
            "{}: {:#?}",
            manifest.name,
            sound.violations
        );

        // The acceptance relations, asserted directly and not only through
        // the checker's own verdict.
        assert!(
            profile.critical_path <= rep.stats.finish_cycle,
            "{}: critical path {} exceeds observed makespan {}",
            manifest.name,
            profile.critical_path,
            rep.stats.finish_cycle
        );
        for (&(from, to), observed) in rep.flight.links() {
            let load = profile
                .links
                .get(&(from, to))
                .unwrap_or_else(|| panic!("{}: {from}->{to} untracked", manifest.name));
            assert!(
                load.wavelets >= observed.wavelets,
                "{}: link {from}->{to} static {} < observed {}",
                manifest.name,
                load.wavelets,
                observed.wavelets
            );
            assert!(
                load.occupancy_bound() >= observed.occupancy.total(),
                "{}: link {from}->{to} occupancy bound too low",
                manifest.name
            );
        }
        let (rows, cols) = rep.mesh;
        for row in 0..rows {
            for col in 0..cols {
                let pe = ceresz::sim::PeId::new(row, col);
                let peak = rep.mem_peak_bytes[row * cols + col];
                assert!(
                    profile.sram_bound(pe) >= peak,
                    "{}: {pe} static watermark {} < observed peak {peak}",
                    manifest.name,
                    profile.sram_bound(pe)
                );
            }
        }
    }
}
