//! Determinism of the sharded parallel simulator core: the same mapping
//! executed at any thread count must produce a bit-identical [`RunReport`]
//! — same outputs, same statistics, same per-stage cycle attribution, same
//! trace. This is the contract that makes `--threads` safe to enable
//! anywhere: parallelism is an implementation detail, never an observable.

use ceresz::core::{CereszConfig, Codec, ErrorBound};
use ceresz::wse::{execute, execute_strategy, EngineMode, SimOptions, Strategy, StrategyKind};

fn wavy(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.011).sin() * 9.0 + (i as f32 * 0.0047).cos() * 3.0)
        .collect()
}

/// RTM-style zero-heavy input: long zero runs with a sparse active front
/// (1-in-16 blocks carry signal). The workload where the discrete-event
/// engine skips the most cycles, so also where an equivalence bug would
/// show first.
fn sparse(n_blocks: usize) -> Vec<f32> {
    let mut data = vec![0f32; n_blocks * 32];
    for b in (0..n_blocks).step_by(16) {
        for i in 0..32 {
            data[b * 32 + i] = ((b * 32 + i) as f32 * 0.013).sin() * 20.0;
        }
    }
    data
}

/// The headline acceptance check: a 64×64 mesh (multi-pipeline, the
/// strategy with the most cross-row structure) stepped serially and with
/// 2 and 8 worker threads yields the *same* report object: equal outputs,
/// equal stats, equal stage totals, equal trace.
#[test]
fn run_report_is_bit_identical_across_thread_counts() {
    // 64 rows × (8 pipelines of length 8) = a full 64×64 mesh; one whole
    // round per pipeline keeps the event count test-sized.
    let kind = StrategyKind::MultiPipeline {
        rows: 64,
        pipeline_length: 8,
        pipelines_per_row: 8,
    };
    assert_eq!(kind.mesh_shape(), (64, 64));
    let data = wavy(32 * 64 * 8);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));

    let serial = execute(kind, &data, &cfg, &SimOptions::default().with_trace(true)).unwrap();
    for threads in [2usize, 8] {
        // Exact thread counts: the sweep must exercise real sharding even
        // on a 1-core CI host (`with_threads` would clamp to 1 there).
        let options = SimOptions::default()
            .with_trace(true)
            .with_threads_exact(threads);
        let sharded = execute(kind, &data, &cfg, &options).unwrap();
        assert_eq!(
            sharded.report, serial.report,
            "RunReport diverged at {threads} threads"
        );
        assert_eq!(sharded.compressed.data, serial.compressed.data);
        assert_eq!(
            sharded.report.stats(),
            serial.report.stats(),
            "SimStats diverged at {threads} threads"
        );
        assert_eq!(
            sharded.report.stage_totals(),
            serial.report.stage_totals(),
            "stage attribution diverged at {threads} threads"
        );
    }
}

/// Thread-count invariance holds for every strategy, including the
/// row-independent ones (where shards never exchange boundary traffic) and
/// at thread counts exceeding the row count.
#[test]
fn every_strategy_is_thread_count_invariant() {
    let data = wavy(32 * 40);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    for kind in [
        StrategyKind::RowParallel { rows: 4 },
        StrategyKind::Pipeline {
            rows: 3,
            pipeline_length: 4,
        },
        StrategyKind::MultiPipeline {
            rows: 2,
            pipeline_length: 2,
            pipelines_per_row: 3,
        },
    ] {
        let serial = execute(kind, &data, &cfg, &SimOptions::default()).unwrap();
        for threads in [2usize, 7, 16] {
            let run = execute(
                kind,
                &data,
                &cfg,
                &SimOptions::default().with_threads_exact(threads),
            )
            .unwrap();
            assert_eq!(
                run.report, serial.report,
                "{kind:?} diverged at {threads} threads"
            );
            assert_eq!(run.compressed.data, serial.compressed.data, "{kind:?}");
        }
    }
}

/// Observability must be unobservable: enabling flight-recorder sampling
/// changes neither the archive bytes nor the `RunReport` (whose equality
/// deliberately excludes the recording itself), at every tested thread
/// count, for every strategy.
#[test]
fn run_report_is_bit_identical_with_sampling_on_or_off() {
    let data = wavy(32 * 48);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    for kind in [
        StrategyKind::RowParallel { rows: 4 },
        StrategyKind::Pipeline {
            rows: 2,
            pipeline_length: 4,
        },
        StrategyKind::MultiPipeline {
            rows: 4,
            pipeline_length: 2,
            pipelines_per_row: 3,
        },
    ] {
        for threads in [1usize, 2, 8] {
            let base = SimOptions::default().with_threads_exact(threads);
            let plain = execute(kind, &data, &cfg, &base).unwrap();
            let sampled =
                execute(kind, &data, &cfg, &base.clone().with_flight_window(512)).unwrap();
            assert_eq!(
                sampled.report, plain.report,
                "{kind:?}: sampling changed the report at {threads} threads"
            );
            assert_eq!(
                sampled.compressed.data, plain.compressed.data,
                "{kind:?}: sampling changed the archive at {threads} threads"
            );
            assert!(plain.report.flight().is_none());
            assert!(sampled.report.flight().is_some());
            assert_eq!(
                sampled.report.stats(),
                plain.report.stats(),
                "{kind:?}: sampling changed the stats at {threads} threads"
            );
        }
    }
}

/// The recording itself is also thread-count invariant: per-PE series,
/// link occupancy, watermarks, and stall attributions merge row-major in
/// the same floating-point order regardless of sharding, so the whole
/// `FlightRecording` compares equal at 1, 2, and 8 threads.
#[test]
fn flight_recording_is_thread_count_invariant() {
    let kind = StrategyKind::MultiPipeline {
        rows: 8,
        pipeline_length: 4,
        pipelines_per_row: 2,
    };
    let data = wavy(32 * 8 * 6);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let serial = execute(
        kind,
        &data,
        &cfg,
        &SimOptions::default().with_flight_window(256),
    )
    .unwrap();
    let reference = serial.report.flight().unwrap();
    assert!(!reference.stall_totals()["compute"].is_zero());
    for threads in [2usize, 8] {
        let sharded = execute(
            kind,
            &data,
            &cfg,
            &SimOptions::default()
                .with_threads_exact(threads)
                .with_flight_window(256),
        )
        .unwrap();
        assert_eq!(
            sharded.report.flight().unwrap(),
            reference,
            "flight recording diverged at {threads} threads"
        );
    }
}

/// Cross-strategy conformance through the unified trait: driving all three
/// strategies as `&dyn Strategy` produces archives byte-identical to the
/// host reference and to one another.
#[test]
fn strategies_agree_bitwise_through_the_trait() {
    let data = wavy(32 * 36 + 11);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let reference = Codec::new(cfg).compress(&data).unwrap();
    let kinds = [
        StrategyKind::RowParallel { rows: 3 },
        StrategyKind::Pipeline {
            rows: 2,
            pipeline_length: 4,
        },
        StrategyKind::MultiPipeline {
            rows: 2,
            pipeline_length: 3,
            pipelines_per_row: 2,
        },
    ];
    let strategies: Vec<&dyn Strategy> = kinds.iter().map(|k| k as &dyn Strategy).collect();
    for strategy in strategies {
        let (compressed, _plan, _report) = execute_strategy(
            strategy,
            &data,
            &cfg,
            &SimOptions::default().with_threads_exact(2),
        )
        .unwrap();
        assert_eq!(
            compressed.data,
            reference.data,
            "{} diverged from the host reference",
            strategy.name()
        );
    }
}

/// The discrete-event engine is an *optimization*, never a semantic change:
/// for every strategy, at 1, 2, and 8 worker threads, it produces a
/// `RunReport` AND a `FlightRecording` bit-identical to the cycle-stepped
/// reference engine.
#[test]
fn event_engine_matches_cycle_stepped_reference() {
    let data = wavy(32 * 48);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    for kind in [
        StrategyKind::RowParallel { rows: 4 },
        StrategyKind::Pipeline {
            rows: 2,
            pipeline_length: 4,
        },
        StrategyKind::MultiPipeline {
            rows: 4,
            pipeline_length: 2,
            pipelines_per_row: 3,
        },
    ] {
        for threads in [1usize, 2, 8] {
            let base = SimOptions::default()
                .with_threads_exact(threads)
                .with_flight_window(512);
            let event = execute(
                kind,
                &data,
                &cfg,
                &base.clone().with_engine(EngineMode::EventDriven),
            )
            .unwrap();
            let stepped = execute(
                kind,
                &data,
                &cfg,
                &base.clone().with_engine(EngineMode::CycleStepped),
            )
            .unwrap();
            assert_eq!(
                event.report, stepped.report,
                "{kind:?}: engines diverged at {threads} threads"
            );
            assert_eq!(
                event.report.flight().unwrap(),
                stepped.report.flight().unwrap(),
                "{kind:?}: flight recordings diverged at {threads} threads"
            );
            assert_eq!(event.compressed.data, stepped.compressed.data, "{kind:?}");
        }
    }
}

/// Engine equivalence on the workload the event queue optimizes hardest:
/// RTM-style zero-heavy data, where whole cycle windows are empty and the
/// event engine skips them. Skipping must be exact — the cycle-stepped
/// reference and the event engine agree bit-for-bit, at every thread count,
/// recordings included.
#[test]
fn sparse_zero_heavy_workload_is_engine_and_thread_invariant() {
    let kind = StrategyKind::MultiPipeline {
        rows: 8,
        pipeline_length: 4,
        pipelines_per_row: 4,
    };
    let data = sparse(8 * 4 * 2); // two rounds per pipeline, 1-in-16 dense
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let reference = execute(
        kind,
        &data,
        &cfg,
        &SimOptions::default()
            .with_threads_exact(1)
            .with_flight_window(256)
            .with_engine(EngineMode::CycleStepped),
    )
    .unwrap();
    for engine in [EngineMode::EventDriven, EngineMode::CycleStepped] {
        for threads in [1usize, 2, 8] {
            let run = execute(
                kind,
                &data,
                &cfg,
                &SimOptions::default()
                    .with_threads_exact(threads)
                    .with_flight_window(256)
                    .with_engine(engine),
            )
            .unwrap();
            assert_eq!(
                run.report, reference.report,
                "sparse run diverged: {engine:?} at {threads} threads"
            );
            assert_eq!(
                run.report.flight().unwrap(),
                reference.report.flight().unwrap(),
                "sparse flight recording diverged: {engine:?} at {threads} threads"
            );
            assert_eq!(run.compressed.data, reference.compressed.data);
        }
    }
}
