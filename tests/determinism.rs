//! Determinism of the sharded parallel simulator core: the same mapping
//! executed at any thread count must produce a bit-identical [`RunReport`]
//! — same outputs, same statistics, same per-stage cycle attribution, same
//! trace. This is the contract that makes `--threads` safe to enable
//! anywhere: parallelism is an implementation detail, never an observable.

use ceresz::core::{compress, CereszConfig, ErrorBound};
use ceresz::wse::{execute, execute_strategy, SimOptions, Strategy, StrategyKind};

fn wavy(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.011).sin() * 9.0 + (i as f32 * 0.0047).cos() * 3.0)
        .collect()
}

/// The headline acceptance check: a 64×64 mesh (multi-pipeline, the
/// strategy with the most cross-row structure) stepped serially and with
/// 2 and 8 worker threads yields the *same* report object: equal outputs,
/// equal stats, equal stage totals, equal trace.
#[test]
fn run_report_is_bit_identical_across_thread_counts() {
    // 64 rows × (8 pipelines of length 8) = a full 64×64 mesh; one whole
    // round per pipeline keeps the event count test-sized.
    let kind = StrategyKind::MultiPipeline {
        rows: 64,
        pipeline_length: 8,
        pipelines_per_row: 8,
    };
    assert_eq!(kind.mesh_shape(), (64, 64));
    let data = wavy(32 * 64 * 8);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));

    let serial = execute(kind, &data, &cfg, &SimOptions::default().with_trace(true)).unwrap();
    for threads in [2usize, 8] {
        let options = SimOptions::default().with_trace(true).with_threads(threads);
        let sharded = execute(kind, &data, &cfg, &options).unwrap();
        assert_eq!(
            sharded.report, serial.report,
            "RunReport diverged at {threads} threads"
        );
        assert_eq!(sharded.compressed.data, serial.compressed.data);
        assert_eq!(
            sharded.report.stats(),
            serial.report.stats(),
            "SimStats diverged at {threads} threads"
        );
        assert_eq!(
            sharded.report.stage_totals(),
            serial.report.stage_totals(),
            "stage attribution diverged at {threads} threads"
        );
    }
}

/// Thread-count invariance holds for every strategy, including the
/// row-independent ones (where shards never exchange boundary traffic) and
/// at thread counts exceeding the row count.
#[test]
fn every_strategy_is_thread_count_invariant() {
    let data = wavy(32 * 40);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    for kind in [
        StrategyKind::RowParallel { rows: 4 },
        StrategyKind::Pipeline {
            rows: 3,
            pipeline_length: 4,
        },
        StrategyKind::MultiPipeline {
            rows: 2,
            pipeline_length: 2,
            pipelines_per_row: 3,
        },
    ] {
        let serial = execute(kind, &data, &cfg, &SimOptions::default()).unwrap();
        for threads in [2usize, 7, 16] {
            let run = execute(
                kind,
                &data,
                &cfg,
                &SimOptions::default().with_threads(threads),
            )
            .unwrap();
            assert_eq!(
                run.report, serial.report,
                "{kind:?} diverged at {threads} threads"
            );
            assert_eq!(run.compressed.data, serial.compressed.data, "{kind:?}");
        }
    }
}

/// Observability must be unobservable: enabling flight-recorder sampling
/// changes neither the archive bytes nor the `RunReport` (whose equality
/// deliberately excludes the recording itself), at every tested thread
/// count, for every strategy.
#[test]
fn run_report_is_bit_identical_with_sampling_on_or_off() {
    let data = wavy(32 * 48);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    for kind in [
        StrategyKind::RowParallel { rows: 4 },
        StrategyKind::Pipeline {
            rows: 2,
            pipeline_length: 4,
        },
        StrategyKind::MultiPipeline {
            rows: 4,
            pipeline_length: 2,
            pipelines_per_row: 3,
        },
    ] {
        for threads in [1usize, 2, 8] {
            let base = SimOptions::default().with_threads(threads);
            let plain = execute(kind, &data, &cfg, &base).unwrap();
            let sampled =
                execute(kind, &data, &cfg, &base.clone().with_flight_window(512.0)).unwrap();
            assert_eq!(
                sampled.report, plain.report,
                "{kind:?}: sampling changed the report at {threads} threads"
            );
            assert_eq!(
                sampled.compressed.data, plain.compressed.data,
                "{kind:?}: sampling changed the archive at {threads} threads"
            );
            assert!(plain.report.flight().is_none());
            assert!(sampled.report.flight().is_some());
            assert_eq!(
                sampled.report.stats(),
                plain.report.stats(),
                "{kind:?}: sampling changed the stats at {threads} threads"
            );
        }
    }
}

/// The recording itself is also thread-count invariant: per-PE series,
/// link occupancy, watermarks, and stall attributions merge row-major in
/// the same floating-point order regardless of sharding, so the whole
/// `FlightRecording` compares equal at 1, 2, and 8 threads.
#[test]
fn flight_recording_is_thread_count_invariant() {
    let kind = StrategyKind::MultiPipeline {
        rows: 8,
        pipeline_length: 4,
        pipelines_per_row: 2,
    };
    let data = wavy(32 * 8 * 6);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let serial = execute(
        kind,
        &data,
        &cfg,
        &SimOptions::default().with_flight_window(256.0),
    )
    .unwrap();
    let reference = serial.report.flight().unwrap();
    assert!(reference.stall_totals()["compute"] > 0.0);
    for threads in [2usize, 8] {
        let sharded = execute(
            kind,
            &data,
            &cfg,
            &SimOptions::default()
                .with_threads(threads)
                .with_flight_window(256.0),
        )
        .unwrap();
        assert_eq!(
            sharded.report.flight().unwrap(),
            reference,
            "flight recording diverged at {threads} threads"
        );
    }
}

/// Cross-strategy conformance through the unified trait: driving all three
/// strategies as `&dyn Strategy` produces archives byte-identical to the
/// host reference and to one another.
#[test]
fn strategies_agree_bitwise_through_the_trait() {
    let data = wavy(32 * 36 + 11);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let reference = compress(&data, &cfg).unwrap();
    let kinds = [
        StrategyKind::RowParallel { rows: 3 },
        StrategyKind::Pipeline {
            rows: 2,
            pipeline_length: 4,
        },
        StrategyKind::MultiPipeline {
            rows: 2,
            pipeline_length: 3,
            pipelines_per_row: 2,
        },
    ];
    let strategies: Vec<&dyn Strategy> = kinds.iter().map(|k| k as &dyn Strategy).collect();
    for strategy in strategies {
        let (compressed, _plan, _report) = execute_strategy(
            strategy,
            &data,
            &cfg,
            &SimOptions::default().with_threads(2),
        )
        .unwrap();
        assert_eq!(
            compressed.data,
            reference.data,
            "{} diverged from the host reference",
            strategy.name()
        );
    }
}
