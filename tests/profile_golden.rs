//! Golden end-to-end tests for the observability pipeline: a small
//! simulated run must yield a valid Perfetto/Chrome trace with the expected
//! track and slice counts, and a `profile.json` whose per-stage ticks sum
//! exactly to the run's total busy ticks.

use ceresz::core::{CereszConfig, ErrorBound};
use ceresz::telemetry::json::{self, JsonValue};
use ceresz::telemetry::profile::ProfileReport;
use ceresz::wse::{profile_compression, MappingStrategy};

fn wavy(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.019).sin() * 11.0 + (i as f32 * 0.002).cos() * 3.0)
        .collect()
}

#[test]
fn perfetto_trace_has_expected_tracks_and_slices() {
    let data = wavy(32 * 8); // 8 blocks
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let profile = profile_compression(
        &data,
        &cfg,
        MappingStrategy::Pipeline {
            rows: 2,
            pipeline_length: 2,
        },
    )
    .unwrap();

    let text = profile.trace.to_json().to_pretty();
    let doc = json::parse(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");

    let metas: Vec<&JsonValue> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
        .collect();
    let slices: Vec<&JsonValue> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .collect();

    // One process_name metadata entry plus one thread_name per active PE.
    let stats = &profile.run.stats;
    assert_eq!(metas.len(), 1 + stats.active_pes, "metadata track count");
    // One complete slice per executed task.
    assert_eq!(slices.len() as u64, stats.total_tasks, "slice count");
    // Slices are named by kernel stage; a pipeline run must include the
    // quantization stage on its first PEs.
    assert!(
        slices
            .iter()
            .any(|s| s.get("name").and_then(JsonValue::as_str) == Some("quant-mul")),
        "expected a quant-mul-labelled slice"
    );
}

#[test]
fn profile_json_stage_ticks_sum_to_total_busy_ticks() {
    let data = wavy(32 * 12);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    for strategy in [
        MappingStrategy::RowParallel { rows: 3 },
        MappingStrategy::Pipeline {
            rows: 1,
            pipeline_length: 4,
        },
        MappingStrategy::MultiPipeline {
            rows: 1,
            pipeline_length: 1,
            pipelines_per_row: 3,
        },
    ] {
        let profile = profile_compression(&data, &cfg, strategy).unwrap();
        // Round-trip through the JSON document, as consumers would.
        let doc = json::parse(&profile.report.to_json().to_pretty()).unwrap();
        let back = ProfileReport::from_json(&doc).unwrap();
        // Integer ticks survive the JSON round trip exactly, so the stage
        // column sums to the busy total with zero tolerance.
        let attributed = back.attributed_ticks();
        let total = back.total_busy_ticks;
        assert!(total > 0, "{strategy:?}: no busy ticks recorded");
        assert_eq!(
            attributed, total,
            "{strategy:?}: stages sum to {attributed}, busy ticks {total}"
        );
        // Shares in the document likewise sum to 1.
        let share_sum: f64 = doc
            .get("stages")
            .and_then(JsonValue::as_arr)
            .unwrap()
            .iter()
            .map(|s| s.get("share").and_then(JsonValue::as_f64).unwrap())
            .sum();
        assert!(
            (share_sum - 1.0).abs() <= 1e-3,
            "{strategy:?}: shares sum to {share_sum}"
        );
    }
}

#[test]
fn profile_groups_reproduce_paper_ordering() {
    // Tables 1–3: fixed-length encoding dominates, then pre-quantization,
    // then the one-pass Lorenzo predictor.
    let data = wavy(32 * 32);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let profile =
        profile_compression(&data, &cfg, MappingStrategy::RowParallel { rows: 4 }).unwrap();
    let groups: std::collections::BTreeMap<&str, u64> =
        profile.report.grouped().into_iter().collect();
    assert!(groups["encode"] > groups["pre-quant"]);
    assert!(groups["pre-quant"] > groups["lorenzo"]);
}
