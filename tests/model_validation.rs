//! Validation of the analytic full-wafer model against the event simulator —
//! the test that licenses extrapolating Figs. 11/12/14 to meshes too large
//! to event-step (DESIGN.md §5.1).

use ceresz::core::plan::MeshShape;
use ceresz::core::{CereszConfig, ErrorBound};
use ceresz::data::{generate_field, DatasetId};
use ceresz::wse::throughput::WaferConfig;
use ceresz::wse::{execute, SimOptions, StrategyKind, StrategyRun};

fn multi_pipeline(data: &[f32], cfg: &CereszConfig, rows: usize, pipelines: usize) -> StrategyRun {
    execute(
        StrategyKind::MultiPipeline {
            rows,
            pipeline_length: 1,
            pipelines_per_row: pipelines,
        },
        data,
        cfg,
        &SimOptions::default(),
    )
    .unwrap()
}

/// The analytic model and the event simulator must agree on total cycles at
/// small mesh sizes (within a modest tolerance: the simulator resolves
/// per-block variation and pipeline fill/drain that the closed form
/// averages away).
#[test]
fn analytic_model_tracks_the_simulator() {
    let field = generate_field(DatasetId::QmcPack, 0, 42);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-4));
    for (rows, pipelines) in [(2usize, 4usize), (4, 8), (2, 16)] {
        // Whole rounds so both sides see the same utilization.
        let blocks = rows * pipelines * 24;
        let data = &field.data[..32 * blocks];
        let sim = multi_pipeline(data, &cfg, rows, pipelines);
        let wafer = WaferConfig::cs2(MeshShape {
            rows,
            cols: pipelines,
        });
        let analytic = wafer.compression_report(data, &cfg, 1).unwrap();
        let ratio = sim.stats.finish_cycle.cycles_f64() / analytic.cycles;
        assert!(
            (0.75..1.25).contains(&ratio),
            "{rows}x{pipelines}: sim {} vs analytic {} (ratio {ratio:.3})",
            sim.stats.finish_cycle,
            analytic.cycles
        );
    }
}

/// The simulator's scaling trend matches the model's across mesh widths:
/// doubling the pipelines (columns) speeds both up by nearly the same factor.
#[test]
fn scaling_trends_agree() {
    let field = generate_field(DatasetId::CesmAtm, 0, 42);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let blocks = 2 * 16 * 12; // whole rounds for both configs
    let data = &field.data[..32 * blocks];

    let sim_a = multi_pipeline(data, &cfg, 2, 8);
    let sim_b = multi_pipeline(data, &cfg, 2, 16);
    let sim_speedup =
        sim_a.stats.finish_cycle.ticks() as f64 / sim_b.stats.finish_cycle.ticks() as f64;

    let wafer_a = WaferConfig::cs2(MeshShape { rows: 2, cols: 8 });
    let wafer_b = WaferConfig::cs2(MeshShape { rows: 2, cols: 16 });
    let ana_a = wafer_a.compression_report(data, &cfg, 1).unwrap();
    let ana_b = wafer_b.compression_report(data, &cfg, 1).unwrap();
    let ana_speedup = ana_a.cycles / ana_b.cycles;

    assert!(
        (sim_speedup - ana_speedup).abs() / ana_speedup < 0.2,
        "sim speedup {sim_speedup:.3} vs analytic {ana_speedup:.3}"
    );
}

/// Fig. 10(b) empirically: simulated per-PE busy time scales ≈ 1/len.
#[test]
fn per_pe_busy_time_is_inverse_in_pipeline_length() {
    let field = generate_field(DatasetId::QmcPack, 0, 42);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-4));
    let data = &field.data[..32 * 256];
    let n_blocks = 256.0;
    let busy_per_block = |len: usize| {
        let run = execute(
            StrategyKind::Pipeline {
                rows: 1,
                pipeline_length: len,
            },
            data,
            &cfg,
            &SimOptions::default(),
        )
        .unwrap();
        run.stats.total_busy_cycles.cycles_f64() / (n_blocks * len as f64)
    };
    let b1 = busy_per_block(1);
    let b4 = busy_per_block(4);
    let ratio = b1 / b4;
    assert!(
        (3.0..5.5).contains(&ratio),
        "expected ≈4x reduction, got {ratio:.2} ({b1:.0} vs {b4:.0})"
    );
}
