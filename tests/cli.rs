//! End-to-end tests of the `ceresz` command-line tool.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ceresz")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ceresz-cli-{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_f32(path: &PathBuf, data: &[f32]) {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(path, bytes).unwrap();
}

fn read_f32(path: &PathBuf) -> Vec<f32> {
    std::fs::read(path)
        .unwrap()
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[test]
fn compress_decompress_verify_roundtrip() {
    let dir = tmpdir("roundtrip");
    let orig_path = dir.join("orig.f32");
    let csz_path = dir.join("data.csz");
    let out_path = dir.join("restored.f32");
    let data: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.01).sin() * 8.0).collect();
    write_f32(&orig_path, &data);

    let st = Command::new(bin())
        .args([
            "compress",
            orig_path.to_str().unwrap(),
            csz_path.to_str().unwrap(),
            "--rel",
            "1e-3",
        ])
        .status()
        .unwrap();
    assert!(st.success());
    assert!(csz_path.metadata().unwrap().len() < orig_path.metadata().unwrap().len());

    let st = Command::new(bin())
        .args([
            "decompress",
            csz_path.to_str().unwrap(),
            out_path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(st.success());
    let restored = read_f32(&out_path);
    assert_eq!(restored.len(), data.len());

    let out = Command::new(bin())
        .args([
            "verify",
            orig_path.to_str().unwrap(),
            csz_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("BOUND HELD"));
}

#[test]
fn info_reports_stream_metadata() {
    let dir = tmpdir("info");
    let orig_path = dir.join("orig.f32");
    let csz_path = dir.join("data.csz");
    write_f32(&orig_path, &vec![1.25f32; 4096]);
    Command::new(bin())
        .args([
            "compress",
            orig_path.to_str().unwrap(),
            csz_path.to_str().unwrap(),
            "--abs",
            "0.01",
        ])
        .status()
        .unwrap();
    let out = Command::new(bin())
        .args(["info", csz_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("elements:    4096"), "{text}");
    assert!(text.contains("block size:  32"), "{text}");
}

#[test]
fn observe_reports_congestion_and_writes_artifacts() {
    let dir = tmpdir("observe");
    let orig_path = dir.join("orig.f32");
    let json_path = dir.join("heat.json");
    let csv_path = dir.join("heat.csv");
    let data: Vec<f32> = (0..32 * 64)
        .map(|i| (i as f32 * 0.02).sin() * 5.0)
        .collect();
    write_f32(&orig_path, &data);

    let out = Command::new(bin())
        .args([
            "observe",
            orig_path.to_str().unwrap(),
            "--strategy",
            "pipeline",
            "--rows",
            "2",
            "--len",
            "4",
            "--top",
            "3",
            "--window",
            "256",
            "--json-out",
            json_path.to_str().unwrap(),
            "--csv-out",
            csv_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stall attribution"), "{text}");
    assert!(text.contains("busy heatmap"), "{text}");
    assert!(text.contains("top 3 PEs by total stall cycles"), "{text}");
    assert!(text.contains("top 3 links by occupancy cycles"), "{text}");

    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"artifact\": \"ceresz-flight-recording\""));
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert!(csv.starts_with("row,col,busy_ticks"));
    assert_eq!(csv.lines().count(), 2 * 4 + 1); // header + one row per PE
}

#[test]
fn lint_json_sweep_reports_all_mappings() {
    let out = Command::new(bin())
        .args(["lint", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // One entry per sweep shape, zero errors, and nothing but JSON on stdout.
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert_eq!(text.matches("\"name\":").count(), 32, "{text}");
    assert!(text.contains("\"errors\": 0"), "{text}");
}

#[test]
fn lint_analyze_json_is_stable_and_sound() {
    let dir = tmpdir("lint-analyze");
    let json_path = dir.join("lint.json");
    let run = || {
        Command::new(bin())
            .args([
                "lint",
                "--strategy",
                "multi-pipeline",
                "--rows",
                "2",
                "--len",
                "2",
                "--pipelines",
                "2",
                "--analyze",
                "--json",
                "--json-out",
                json_path.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.stdout, b.stdout, "lint --json output must be byte-stable");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("\"critical_path_ticks\""), "{text}");
    assert!(text.contains("\"deadlock\": \"proven\""), "{text}");
    assert!(text.contains("\"soundness_violations\": 0"), "{text}");
    // --json-out wrote the same document to the file.
    let file = std::fs::read_to_string(&json_path).unwrap();
    assert!(text.contains(file.trim()), "file and stdout disagree");
}

#[test]
fn bad_usage_fails_with_help() {
    let out = Command::new(bin()).args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn corrupt_stream_fails_cleanly() {
    let dir = tmpdir("corrupt");
    let bad = dir.join("bad.csz");
    // Long enough for the header parse to reach the magic check.
    std::fs::write(&bad, b"this is definitely not a ceresz stream").unwrap();
    let out = Command::new(bin())
        .args(["info", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));
}

#[test]
fn custom_block_size_roundtrips() {
    let dir = tmpdir("block");
    let orig_path = dir.join("orig.f32");
    let csz_path = dir.join("data.csz");
    let data: Vec<f32> = (0..5_000).map(|i| (i % 100) as f32).collect();
    write_f32(&orig_path, &data);
    let st = Command::new(bin())
        .args([
            "compress",
            orig_path.to_str().unwrap(),
            csz_path.to_str().unwrap(),
            "--rel",
            "1e-2",
            "--block",
            "64",
        ])
        .status()
        .unwrap();
    assert!(st.success());
    let out = Command::new(bin())
        .args(["info", csz_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("block size:  64"));
}
