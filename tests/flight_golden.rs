//! Golden-file tests for the flight-recorder exports: a small fixed mapping
//! on a fixed input must reproduce the committed CSV grid and ASCII heatmap
//! byte-for-byte. The exports are pure functions of the (bit-deterministic)
//! recording, so any diff here is a real behavior change in the simulator's
//! cycle accounting or in the export formatting — both worth a review.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test flight_golden
//! ```

use ceresz::core::{CereszConfig, ErrorBound};
use ceresz::sim::{FlightRecording, Metric, StallCause};
use ceresz::wse::{execute, SimOptions, StrategyKind};

fn wavy(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.013).sin() * 10.0 + (i as f32 * 0.0031).cos() * 2.0)
        .collect()
}

/// The fixed golden scenario: a 2-row, length-4 pipeline over 16 blocks,
/// sampled with a 256-cycle window — small enough to eyeball, rich enough
/// to exercise every stall cause except send-backpressure.
fn run_golden() -> FlightRecording {
    let data = wavy(32 * 16);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
    let kind = StrategyKind::Pipeline {
        rows: 2,
        pipeline_length: 4,
    };
    let mut run = execute(
        kind,
        &data,
        &cfg,
        &SimOptions::default().with_flight_window(256),
    )
    .unwrap();
    run.report.take_flight().unwrap()
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}; bless with BLESS_GOLDEN=1", path.display()));
    assert_eq!(
        actual, expected,
        "{name} diverged from golden; if intentional, regenerate with \
         BLESS_GOLDEN=1 cargo test --test flight_golden"
    );
}

#[test]
fn csv_export_matches_golden() {
    check_golden("flight_pipeline.csv", &run_golden().to_csv());
}

#[test]
fn ascii_heatmaps_match_golden() {
    let recording = run_golden();
    let mut text = String::new();
    for metric in [
        Metric::Busy,
        Metric::TotalStall,
        Metric::Stall(StallCause::RecvWaiting),
    ] {
        text.push_str(&recording.ascii_heatmap(metric, 8, 80));
        text.push('\n');
    }
    for (cause, cycles) in recording.stall_totals() {
        text.push_str(&format!("{cause}: {cycles}\n"));
    }
    check_golden("flight_pipeline_heatmap.txt", &text);
}

#[test]
fn json_export_matches_golden() {
    check_golden("flight_pipeline.json", &run_golden().to_json().to_pretty());
}
