//! Workspace-level property tests: arbitrary data through the full stack.

use ceresz::core::{verify_error_bound, CereszConfig, Codec, ErrorBound, Parallelism};
use ceresz::wse::{execute, SimOptions, StrategyKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any finite data, any strategy: the simulated wafer output is
    /// bit-identical to the host reference, and the bound holds.
    #[test]
    fn wafer_equals_host_for_arbitrary_data(
        data in prop::collection::vec(-1e5f32..1e5, 32..512),
        rows in 1usize..4,
        len in 1usize..4,
        pipes in 1usize..3,
    ) {
        let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
        let reference = Codec::new(cfg).compress(&data).unwrap();
        let strategy = StrategyKind::MultiPipeline {
            rows,
            pipeline_length: len,
            pipelines_per_row: pipes,
        };
        let run = execute(strategy, &data, &cfg, &SimOptions::default()).unwrap();
        prop_assert_eq!(&run.compressed.data, &reference.data);
        let restored = Codec::decompressor(Parallelism::Serial)
            .decompress(&run.compressed.data)
            .unwrap();
        prop_assert!(verify_error_bound(&data, &restored, reference.stats.eps));
    }

    /// Baseline codecs honor arbitrary REL bounds on arbitrary data.
    #[test]
    fn baselines_honor_arbitrary_bounds(
        data in prop::collection::vec(-1e4f32..1e4, 16..300),
        lambda_exp in 1..5i32,
    ) {
        use baselines::traits::Codec;
        let bound = ErrorBound::Rel(10f64.powi(-lambda_exp));
        let dims = vec![data.len()];
        let sz3 = baselines::sz3::Sz3;
        let c = sz3.compress(&data, &dims, bound).unwrap();
        let r = sz3.decompress(&c).unwrap();
        prop_assert!(verify_error_bound(&data, &r, c.eps));
        let cusz = baselines::cusz::CuSz;
        let c = cusz.compress(&data, &dims, bound).unwrap();
        let r = cusz.decompress(&c).unwrap();
        prop_assert!(verify_error_bound(&data, &r, c.eps));
    }

    /// Huffman round-trips arbitrary symbol streams end to end.
    #[test]
    fn huffman_roundtrip_arbitrary(symbols in prop::collection::vec(0u32..10_000, 0..2_000)) {
        let enc = ceresz::huffman::codec::encode(&symbols).unwrap();
        prop_assert_eq!(ceresz::huffman::codec::decode(&enc).unwrap(), symbols);
    }

    /// Static-analysis soundness (fuzzer oracle 6, pinned as a property):
    /// for arbitrary data and multi-pipeline shapes the analyzer proves
    /// deadlock-freedom and its bounds dominate the flight-recorded run.
    #[test]
    fn static_profile_is_sound_for_arbitrary_shapes(
        data in prop::collection::vec(-1e5f32..1e5, 32..512),
        rows in 1usize..4,
        len in 1usize..4,
        pipes in 1usize..3,
    ) {
        use ceresz::wse::{analyze_mapping, check_soundness, mapping_manifest, observe};
        let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
        let strategy = StrategyKind::MultiPipeline {
            rows,
            pipeline_length: len,
            pipelines_per_row: pipes,
        };
        let manifest = mapping_manifest(&data, &cfg, strategy).unwrap();
        let profile = analyze_mapping(&manifest);
        prop_assert!(profile.is_deadlock_free(), "{}: {:?}", manifest.name, profile.deadlock);
        let options = SimOptions::default().with_flight_window(512);
        let rep = observe(&strategy, &data, &cfg, &options).unwrap();
        let sound = check_soundness(&profile, &rep.stats, &rep.flight, &rep.mem_peak_bytes);
        prop_assert!(sound.is_sound(), "{}: {:?}", manifest.name, sound.violations);
    }
}
