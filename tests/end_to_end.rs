//! Cross-crate end-to-end tests: synthetic datasets through the host
//! compressor, every WSE mapping strategy, and the simulated decompressor.

use ceresz::core::{verify_error_bound, CereszConfig, Codec, ErrorBound, Parallelism};
use ceresz::data::{generate_field, DatasetId, ALL_DATASETS};
use ceresz::wse::decompress_map::run_row_decompress;
use ceresz::wse::{execute, SimOptions, StrategyKind};

/// A small prefix of each dataset keeps the event simulator fast while still
/// exercising real data distributions.
fn sample(ds: DatasetId, n: usize) -> Vec<f32> {
    generate_field(ds, 0, 42).data[..n].to_vec()
}

#[test]
fn every_dataset_roundtrips_on_every_strategy() {
    for ds in ALL_DATASETS {
        let data = sample(ds, 32 * 48);
        let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
        let reference = Codec::new(cfg).compress(&data).unwrap();
        for strategy in [
            StrategyKind::RowParallel { rows: 4 },
            StrategyKind::Pipeline {
                rows: 2,
                pipeline_length: 3,
            },
            StrategyKind::MultiPipeline {
                rows: 2,
                pipeline_length: 2,
                pipelines_per_row: 2,
            },
        ] {
            let run = execute(strategy, &data, &cfg, &SimOptions::default()).unwrap();
            assert_eq!(
                run.compressed.data, reference.data,
                "{ds:?} {strategy:?} diverged from the host reference"
            );
        }
        let restored = Codec::decompressor(Parallelism::Serial)
            .decompress(&reference.data)
            .unwrap();
        assert!(
            verify_error_bound(&data, &restored, reference.stats.eps),
            "{ds:?} bound violated"
        );
    }
}

#[test]
fn simulated_decompression_matches_host_on_all_datasets() {
    for ds in ALL_DATASETS {
        let data = sample(ds, 32 * 40 + 17);
        let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
        let c = Codec::new(cfg).compress(&data).unwrap();
        let host = Codec::decompressor(Parallelism::Serial)
            .decompress(&c.data)
            .unwrap();
        let sim = run_row_decompress(&c, 3).unwrap();
        assert_eq!(sim.restored, host, "{ds:?}");
    }
}

#[test]
fn decompression_beats_compression_in_cycles() {
    // §3's claim, checked in the event simulator on real data.
    let data = sample(DatasetId::CesmAtm, 32 * 64);
    let cfg = CereszConfig::new(ErrorBound::Rel(1e-4));
    let comp = execute(
        StrategyKind::RowParallel { rows: 2 },
        &data,
        &cfg,
        &SimOptions::default(),
    )
    .unwrap();
    let decomp = run_row_decompress(&comp.compressed, 2).unwrap();
    assert!(
        decomp.stats.finish_cycle < comp.stats.finish_cycle,
        "decompression {} !< compression {}",
        decomp.stats.finish_cycle,
        comp.stats.finish_cycle
    );
}

#[test]
fn tighter_bound_means_lower_ratio_on_every_dataset() {
    for ds in ALL_DATASETS {
        let data = generate_field(ds, 0, 42).data;
        let loose = Codec::new(CereszConfig::new(ErrorBound::Rel(1e-2)))
            .compress(&data)
            .unwrap();
        let tight = Codec::new(CereszConfig::new(ErrorBound::Rel(1e-4)))
            .compress(&data)
            .unwrap();
        assert!(
            loose.ratio() > tight.ratio(),
            "{ds:?}: {} !> {}",
            loose.ratio(),
            tight.ratio()
        );
    }
}

#[test]
fn quality_metrics_improve_with_tighter_bounds() {
    let field = generate_field(DatasetId::Nyx, 3, 42);
    let mut last_psnr = 0.0;
    for rel in [1e-2, 1e-3, 1e-4] {
        let c = Codec::new(CereszConfig::new(ErrorBound::Rel(rel)))
            .compress(&field.data)
            .unwrap();
        let r = Codec::decompressor(Parallelism::Serial)
            .decompress(&c.data)
            .unwrap();
        let p = ceresz::quality::psnr(&field.data, &r);
        assert!(
            p > last_psnr,
            "PSNR not improving at REL {rel}: {p} vs {last_psnr}"
        );
        last_psnr = p;
    }
    // Uniform quantization at ε = 1e-4·range floors PSNR at
    // 80 + 10·log10(3) = 84.77 dB — the paper's Fig. 15 value. Values that
    // quantize exactly (the zero-heavy bulk of this field) can only raise it.
    assert!(
        (84.7..90.0).contains(&last_psnr),
        "PSNR = {last_psnr}, expected >= 84.77 dB floor"
    );
}
