//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the subset of `rand`'s API the workspace actually uses —
//! `SmallRng`, `StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` / `Rng::gen` over primitive types — backed by
//! xoshiro256++ (Blackman & Vigna). Streams are deterministic for a given
//! seed but are **not** the same streams upstream `rand` produces; all
//! in-repo consumers only require determinism, not specific values.

pub mod rngs {
    pub use crate::small::SmallRng;
    /// `StdRng` is an alias of [`SmallRng`] here; the distinction only
    /// matters for cryptographic quality, which nothing in-repo needs.
    pub type StdRng = SmallRng;
}

mod small {
    /// xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng::from_u64_seed(seed)
    }
}

/// Types that can be drawn uniformly from a range (the slice of
/// `rand::distributions::uniform::SampleUniform` the workspace needs).
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range(rng: &mut rngs::SmallRng, low: Self, high: Self, inclusive: bool) -> Self;
    fn sample_any(rng: &mut rngs::SmallRng) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range(
                rng: &mut rngs::SmallRng,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "gen_range: empty range"
                );
                let span = if inclusive {
                    (high as $wide).wrapping_sub(low as $wide).wrapping_add(1)
                } else {
                    (high as $wide).wrapping_sub(low as $wide)
                };
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return Self::sample_any(rng);
                }
                // Modulo is biased for spans near 2^64; nothing in-repo
                // draws from spans anywhere close, so keep it simple.
                let r = rng.next_u64() as $wide % span;
                ((low as $wide).wrapping_add(r)) as $t
            }
            fn sample_any(rng: &mut rngs::SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

macro_rules! impl_uniform_float {
    ($($t:ty, $bits:expr, $mant:expr);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_range(
                rng: &mut rngs::SmallRng,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = Self::sample_any(rng);
                low + (high - low) * unit
            }
            fn sample_any(rng: &mut rngs::SmallRng) -> Self {
                // Uniform in [0, 1): top mantissa-width bits of a u64.
                let x = rng.next_u64() >> (64 - $mant);
                x as $t / (1u64 << $mant) as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, 32, 24; f64, 64, 53);

/// A half-open or inclusive range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::SmallRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut rngs::SmallRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut rngs::SmallRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// The generator trait, mirroring the parts of `rand::Rng` in use.
pub trait Rng {
    /// Draw uniformly from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Draw a uniform value of `T` (full domain for ints, [0,1) for floats).
    fn gen<T: SampleUniform>(&mut self) -> T;
    /// Draw a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::SmallRng {
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample_any(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z: usize = rng.gen_range(64..4096);
            assert!((64..4096).contains(&z));
            let w: u32 = rng.gen_range(0..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (mut lo, mut hi) = (1.0f64, 0.0f64);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
