//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access, so this vendored crate
//! provides the `par_*` entry points the workspace uses and executes them
//! **sequentially**: each `par_` method returns the corresponding standard
//! iterator, and every adapter the callers chain on (`map`, `zip`,
//! `enumerate`, `try_for_each`, `collect`, …) is the `std::iter::Iterator`
//! method of the same name and semantics. Results are identical to rayon's
//! (the workspace only uses order-preserving adapters); only the wall-clock
//! parallelism is lost, which no test asserts on.

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// `slice.par_chunks(n)` — sequential [`std::slice::Chunks`].
pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `slice.par_chunks_mut(n)` — sequential [`std::slice::ChunksMut`].
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// `collection.into_par_iter()` — the sequential `IntoIterator`.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<I: IntoIterator> IntoParallelIterator for I {}

/// `(&collection).par_iter()` for non-slice collections.
pub trait IntoParallelRefIterator<'a> {
    type Iter;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

/// Sequential `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Always 1: this shim never spawns threads.
#[must_use]
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_matches_chunks() {
        let v: Vec<u32> = (0..10).collect();
        let a: Vec<Vec<u32>> = v.par_chunks(3).map(<[u32]>::to_vec).collect();
        let b: Vec<Vec<u32>> = v.chunks(3).map(<[u32]>::to_vec).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn par_chunks_mut_zip_try_for_each() {
        let mut out = vec![0u32; 6];
        let offs: Vec<u32> = (0..3).collect();
        out.par_chunks_mut(2)
            .zip(offs.par_chunks(1))
            .try_for_each(|(chunk, o)| {
                for c in chunk {
                    *c = o[0] * 10;
                }
                Ok::<(), ()>(())
            })
            .unwrap();
        assert_eq!(out, vec![0, 0, 10, 10, 20, 20]);
    }
}
