//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of proptest's API the workspace tests use:
//!
//! * the [`proptest!`] macro over `fn name(pat in strategy, …) { body }`
//!   items with optional `#![proptest_config(…)]`;
//! * numeric range strategies (`a..b`, `a..=b`), [`any`], and
//!   [`prop::collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from upstream: case generation is seeded deterministically
//! from the test name (no `PROPTEST_` env handling), and failing cases are
//! **not shrunk** — the panic message carries the case index so a failure is
//! still reproducible by rerunning the test.

use rand::rngs::SmallRng;

#[doc(hidden)]
pub use rand;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirrors `proptest::test_runner`.
pub mod test_runner {
    /// Number of generated cases per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// How many cases to generate.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Mirrors `proptest::strategy`.
pub mod strategy {
    use super::SmallRng;
    use rand::{Rng, SampleUniform};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy of [`crate::any`]: the full domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: SampleUniform> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen()
        }
    }

    /// Strategy returning a fixed value (`proptest::strategy::Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

/// Uniform over the whole domain of `T` (ints) or `[0, 1)` (floats).
#[must_use]
pub fn any<T: rand::SampleUniform>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Mirrors the `proptest::prelude::prop` module path.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Length specification for [`vec()`]: an exact length or a range.
        #[derive(Debug, Clone)]
        pub enum SizeRange {
            /// Exactly this many elements.
            Exact(usize),
            /// Uniform within `[lo, hi)`.
            Range(usize, usize),
            /// Uniform within `[lo, hi]`.
            Inclusive(usize, usize),
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange::Exact(n)
            }
        }
        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange::Range(r.start, r.end)
            }
        }
        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                let (lo, hi) = r.into_inner();
                SizeRange::Inclusive(lo, hi)
            }
        }

        /// Strategy generating a `Vec` of `element` values.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let n = match self.size {
                    SizeRange::Exact(n) => n,
                    SizeRange::Range(lo, hi) => rng.gen_range(lo..hi),
                    SizeRange::Inclusive(lo, hi) => rng.gen_range(lo..=hi),
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Deterministic per-test seed: FNV-1a of the test's name.
#[must_use]
pub fn seed_of(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of one `fn` item per step. Each generated test runs
/// `config.cases` deterministic cases; a failure panics with the case index.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = <$crate::rand::rngs::SmallRng as $crate::rand::SeedableRng>::seed_from_u64(
                $crate::seed_of(stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __run = || {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                };
                if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest stub: {} failed at case {}/{} (deterministic seed)",
                        stringify!($name),
                        __case + 1,
                        __config.cases
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(
            xs in prop::collection::vec(-10i64..10, 1..=20),
            n in 1usize..5,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() <= 20);
            prop_assert!(xs.iter().all(|x| (-10..10).contains(x)));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn any_is_full_domain(mags in prop::collection::vec(any::<u32>(), 8..64)) {
            prop_assert!(mags.len() >= 8 && mags.len() < 64);
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(-1e4f32..1e4, 32)) {
            prop_assert_eq!(v.len(), 32);
        }
    }

    #[test]
    fn impl_strategy_in_return_position() {
        fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
            prop::collection::vec(-1e6f32..1e6f32, 1..=n)
        }
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(1);
        let v = values(8).generate(&mut rng);
        assert!(!v.is_empty() && v.len() <= 8);
    }
}
