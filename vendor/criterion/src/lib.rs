//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so this vendored crate
//! implements the `criterion_group!` / `criterion_main!` surface the
//! workspace benches use, backed by a plain wall-clock runner: each
//! `bench_function` is warmed up, then timed adaptively until ~100 ms of
//! samples accumulate, and the mean ns/iter (plus throughput, when set) is
//! printed. No statistics, plotting, or baseline storage.
//!
//! When the binary is invoked by `cargo test` (any `--test`-style flag in
//! argv), every benchmark body runs exactly once as a smoke test so test
//! runs stay fast.

use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A `group.bench_function` identifier: a name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("variant", param)`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Passed to each benchmark closure; its [`iter`](Bencher::iter) runs and
/// times the hot loop.
pub struct Bencher<'a> {
    smoke: bool,
    result_ns: &'a mut f64,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly and record the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            black_box(routine());
            *self.result_ns = 0.0;
            return;
        }
        // Warm-up: one call, then scale the batch to the ~100 ms budget.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let budget = Duration::from_millis(100);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.result_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named set of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration workload for derived throughput reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API compatibility; the stand-in's single timed pass has
    /// no sampling to configure.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut ns = f64::NAN;
        let mut b = Bencher {
            smoke: self.criterion.smoke,
            result_ns: &mut ns,
        };
        f(&mut b);
        if self.criterion.smoke {
            println!("{}/{}: ok (smoke)", self.name, id);
            return self;
        }
        let mut line = format!("{}/{}: {:.1} ns/iter", self.name, id, ns);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!(" ({:.1} Melem/s)", n as f64 / ns * 1e3));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(" ({:.2} GB/s)", n as f64 / ns));
            }
            None => {}
        }
        println!("{line}");
        self
    }

    /// End the group (printing is incremental; nothing left to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with libtest-style
        // flags; treat any of them as "run once and exit quickly".
        let smoke = std::env::args().any(|a| {
            a == "--test" || a == "--list" || a.starts_with("--format") || a == "--nocapture"
        });
        Self { smoke }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group(name.to_owned())
            .bench_function("run", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("sum");
        g.throughput(Throughput::Elements(1000));
        g.bench_function(BenchmarkId::new("seq", 1000), |b| {
            b.iter(|| (0..1000u64).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn group_api_runs() {
        let mut c = Criterion { smoke: true };
        sample_bench(&mut c);
    }
}
