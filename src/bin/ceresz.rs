//! `ceresz` — command-line error-bounded lossy compression of raw `f32`
//! files (SDRBench layout: little-endian, no header).
//!
//! ```text
//! ceresz compress   <in.f32> <out.csz> [--rel 1e-3 | --abs 0.01] [--block 32]
//!                   [--recipe SPEC | --auto-tune [--dims RxC]]
//!                   [--profile-out p.json]
//! ceresz decompress <in.csz> <out.f32> [--profile-out p.json]
//! ceresz info       <in.csz>
//! ceresz verify     <orig.f32> <in.csz>
//! ceresz profile    <in.f32> [--rel L | --abs E] [--block N]
//!                   [--strategy row-parallel|pipeline|multi-pipeline]
//!                   [--rows R] [--len L] [--pipelines P] [--limit N]
//!                   [--threads T] [--out profile.json] [--trace-out trace.json]
//! ceresz observe    [<in.f32>] [--rel L | --abs E] [--block N]
//!                   [--strategy S --rows R --len L --pipelines P |
//!                    --all-strategies] [--limit N] [--threads T]
//!                   [--window W] [--top K] [--json-out h.json]
//!                   [--csv-out h.csv]
//! ceresz fuzz       [--seed N] [--cases M] [--no-shrink]
//! ceresz lint       [--all-strategies | --strategy S --rows R --len L
//!                    --pipelines P] [--rel L | --abs E] [--block N]
//!                   [--analyze] [--json] [--json-out lint.json]
//! ```
//!
//! `profile` runs the chosen mapping strategy on the event simulator with
//! per-stage cycle attribution and timeline tracing enabled, prints the
//! stage table (the shape of the paper's Tables 1–3), and writes the
//! machine-readable `profile.json` plus a Perfetto-loadable Chrome trace.
//! `--threads T` shards the simulator over T worker threads (the report is
//! bit-identical at any thread count).
//!
//! `observe` runs the flight recorder over a strategy (by default the
//! 64×64-mesh multi-pipeline; `--all-strategies` sweeps all three on
//! 64-row meshes) and prints the stall-attribution report, ASCII busy and
//! stall heatmaps, and the top-K congested PEs and links. Without an input
//! file a synthetic smooth signal sized to the mesh is used. `--window W`
//! sets the sampling window in cycles; `--json-out`/`--csv-out` write the
//! mesh-shaped heatmap artifacts.
//!
//! `lint` statically verifies the constructed mappings — routing soundness,
//! color discipline, channel balance, SRAM budgets, task liveness — across
//! the EXPERIMENTS.md strategy × mesh-shape sweep (or one explicit shape),
//! without simulating a single cycle; it exits nonzero on any error-severity
//! diagnostic, which is what CI's `lint-mappings` job gates on. With
//! `--analyze` each mapping additionally runs through the static performance
//! analyzer — per-link worst-case loads, a critical-path lower bound on the
//! makespan, per-PE SRAM watermarks, and a deadlock-freedom proof over the
//! channel-dependency graph — and every bound is cross-validated against a
//! flight-recorded simulation of the same mapping (CI's `analyze-mappings`
//! job); a bound the dynamic run escapes is a soundness violation and fails
//! the lint. `--json` replaces the text report with a machine-readable
//! document (stable field order, diagnostics ranked most-severe first) on
//! stdout; `--json-out` writes the same document to a file.
//!
//! `compress --recipe SPEC` selects an explicit stage composition instead
//! of the canonical `quantize,lorenzo1,fixed` pipeline — e.g.
//! `--recipe quantize,lorenzo1,fixed,huffman` appends an entropy stage, and
//! `--recipe lorenzo2:ROWSxCOLSxTILE` requires `--block TILE²`. Non-canonical
//! recipes write version-2 streams that record the recipe, so `decompress`
//! needs no flags. `--auto-tune` instead samples the field under the built-in
//! candidate slate and picks the best recipe at the bound (pass `--dims RxC`
//! to enable the 2-D Lorenzo candidate on row-major 2-D fields).
//!
//! `fuzz` runs the deterministic differential conformance harness (see the
//! `conformance` crate): seeded adversarial inputs through the host
//! compressor, all three simulated mapping strategies, the decoders under
//! byte-level corruption, and the baseline codecs. Any failure prints the
//! case seed so `ceresz fuzz --case-seed <that seed>` replays it alone.

use std::path::Path;
use std::process::ExitCode;

use ceresz::core::stream::StreamHeader;
use ceresz::core::{
    max_abs_error, verify_error_bound, CereszConfig, Codec, ErrorBound, Parallelism, Recipe,
};
use ceresz::telemetry::Recorder;
use ceresz::wse::{profile_compression_with, MappingStrategy, SimOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!(
                "  ceresz compress   <in.f32> <out.csz> [--rel L | --abs E] [--block N] \
                 [--recipe SPEC | --auto-tune [--dims RxC]] [--profile-out p.json]"
            );
            eprintln!("  ceresz decompress <in.csz> <out.f32> [--profile-out p.json]");
            eprintln!("  ceresz info       <in.csz>");
            eprintln!("  ceresz verify     <orig.f32> <in.csz>");
            eprintln!(
                "  ceresz profile    <in.f32> [--rel L | --abs E] [--block N] \
                 [--strategy S] [--rows R] [--len L] [--pipelines P] [--limit N] \
                 [--threads T] [--out profile.json] [--trace-out trace.json]"
            );
            eprintln!(
                "  ceresz observe    [<in.f32>] [--rel L | --abs E] [--block N] \
                 [--strategy S --rows R --len L --pipelines P | --all-strategies] \
                 [--limit N] [--threads T] [--window W] [--top K] \
                 [--json-out h.json] [--csv-out h.csv]"
            );
            eprintln!("  ceresz fuzz       [--seed N] [--cases M] [--no-shrink] [--case-seed S]");
            eprintln!(
                "  ceresz lint       [--all-strategies | --strategy S --rows R --len L \
                 --pipelines P] [--rel L | --abs E] [--block N] [--analyze] [--json] \
                 [--json-out lint.json]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("observe") => cmd_observe(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".into()),
    }
}

fn read_f32(path: &str) -> Result<Vec<f32>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    if bytes.len() % 4 != 0 {
        return Err(format!(
            "{path}: size {} is not a multiple of 4",
            bytes.len()
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// All flags any subcommand accepts; each command reads the subset it needs.
struct Flags {
    positional: Vec<String>,
    bound: ErrorBound,
    block: usize,
    /// `--profile-out`: write a wall-clock telemetry snapshot here.
    profile_out: Option<String>,
    /// `profile` options.
    strategy: String,
    rows: usize,
    len: usize,
    pipelines: usize,
    /// Max values fed to the event simulator (0 = no limit).
    limit: usize,
    /// Simulator worker threads (row shards; 1 = serial).
    threads: usize,
    out: Option<String>,
    trace_out: Option<String>,
    /// `observe` options: sampling window in whole cycles (0 = recorder
    /// default).
    window: u64,
    /// Top-K table length in the observe report.
    top: usize,
    json_out: Option<String>,
    csv_out: Option<String>,
    /// `fuzz` options.
    seed: u64,
    cases: u64,
    no_shrink: bool,
    case_seed: Option<u64>,
    /// `lint` options.
    all_strategies: bool,
    /// Whether `--strategy` was passed explicitly (lint sweeps otherwise).
    strategy_explicit: bool,
    /// `lint --analyze`: run the static performance analyzer and
    /// cross-validate its bounds against a flight-recorded simulation.
    analyze: bool,
    /// `lint --json`: emit the machine-readable report on stdout instead of
    /// the text report.
    json: bool,
    /// `compress --recipe`: explicit stage composition (see `Recipe::parse`).
    recipe: Option<String>,
    /// `compress --auto-tune`: pick the recipe per field by sampling.
    auto_tune: bool,
    /// `compress --dims RxC`: 2-D shape hint for the auto-tuner.
    dims: Option<(usize, usize)>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        positional: Vec::new(),
        bound: ErrorBound::Rel(1e-3),
        block: 32,
        profile_out: None,
        strategy: "pipeline".to_owned(),
        rows: 2,
        len: 4,
        pipelines: 2,
        limit: 32 * 512,
        threads: 1,
        out: None,
        trace_out: None,
        window: 0,
        top: 8,
        json_out: None,
        csv_out: None,
        seed: 42,
        cases: 1000,
        no_shrink: false,
        case_seed: None,
        all_strategies: false,
        strategy_explicit: false,
        analyze: false,
        json: false,
        recipe: None,
        auto_tune: false,
        dims: None,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        let flag = &args[*i];
        let v = args
            .get(*i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .clone();
        *i += 2;
        Ok(v)
    };
    while i < args.len() {
        match args[i].as_str() {
            "--rel" => f.bound = ErrorBound::Rel(parse_num(&value(&mut i)?, "--rel")?),
            "--abs" => f.bound = ErrorBound::Abs(parse_num(&value(&mut i)?, "--abs")?),
            "--block" => f.block = parse_usize(&value(&mut i)?, "--block")?,
            "--profile-out" => f.profile_out = Some(value(&mut i)?),
            "--strategy" => {
                f.strategy = value(&mut i)?;
                f.strategy_explicit = true;
            }
            "--rows" => f.rows = parse_usize(&value(&mut i)?, "--rows")?,
            "--len" => f.len = parse_usize(&value(&mut i)?, "--len")?,
            "--pipelines" => f.pipelines = parse_usize(&value(&mut i)?, "--pipelines")?,
            "--limit" => f.limit = parse_usize(&value(&mut i)?, "--limit")?,
            "--threads" => f.threads = parse_usize(&value(&mut i)?, "--threads")?,
            "--out" => f.out = Some(value(&mut i)?),
            "--trace-out" => f.trace_out = Some(value(&mut i)?),
            "--window" => f.window = parse_u64(&value(&mut i)?, "--window")?,
            "--top" => f.top = parse_usize(&value(&mut i)?, "--top")?,
            "--json-out" => f.json_out = Some(value(&mut i)?),
            "--csv-out" => f.csv_out = Some(value(&mut i)?),
            "--seed" => f.seed = parse_u64(&value(&mut i)?, "--seed")?,
            "--cases" => f.cases = parse_u64(&value(&mut i)?, "--cases")?,
            "--no-shrink" => {
                f.no_shrink = true;
                i += 1;
            }
            "--case-seed" => f.case_seed = Some(parse_u64(&value(&mut i)?, "--case-seed")?),
            "--all-strategies" => {
                f.all_strategies = true;
                i += 1;
            }
            "--analyze" => {
                f.analyze = true;
                i += 1;
            }
            "--json" => {
                f.json = true;
                i += 1;
            }
            "--recipe" => f.recipe = Some(value(&mut i)?),
            "--auto-tune" => {
                f.auto_tune = true;
                i += 1;
            }
            "--dims" => f.dims = Some(parse_dims(&value(&mut i)?)?),
            other => {
                f.positional.push(other.to_owned());
                i += 1;
            }
        }
    }
    Ok(f)
}

/// Parse `--dims RxC` (e.g. `1800x3600`).
fn parse_dims(s: &str) -> Result<(usize, usize), String> {
    let (r, c) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("--dims: expected RxC, got '{s}'"))?;
    Ok((
        parse_usize(r, "--dims rows")?,
        parse_usize(c, "--dims cols")?,
    ))
}

fn parse_num(s: &str, flag: &str) -> Result<f64, String> {
    s.parse().map_err(|e| format!("{flag}: {e}"))
}

fn parse_usize(s: &str, flag: &str) -> Result<usize, String> {
    s.parse().map_err(|e| format!("{flag}: {e}"))
}

/// Parse a u64 in decimal or, with an `0x` prefix, hex (the form the fuzz
/// report prints case seeds in).
fn parse_u64(s: &str, flag: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|e| format!("{flag}: {e}"))
}

/// Write `doc` as pretty JSON to `path`.
fn write_json(path: &str, doc: &ceresz::telemetry::json::JsonValue) -> Result<(), String> {
    std::fs::write(path, doc.to_pretty()).map_err(|e| format!("writing {path}: {e}"))
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let [input, output] = f.positional.as_slice() else {
        return Err("compress needs <in.f32> <out.csz>".into());
    };
    let recorder = if f.profile_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let data = {
        let _span = recorder.wall_span("read-input");
        read_f32(input)?
    };
    let mut cfg = CereszConfig::new(f.bound).with_block_size(f.block);
    if f.auto_tune && f.recipe.is_some() {
        return Err("--recipe and --auto-tune are mutually exclusive".into());
    }
    if let Some(spec) = &f.recipe {
        cfg = cfg.with_recipe(Recipe::parse(spec).map_err(|e| e.to_string())?);
    }
    let t0 = std::time::Instant::now();
    let c = {
        let _span = recorder.wall_span("compress");
        if f.auto_tune {
            let (c, report) = ceresz::core::tune::compress_auto(&data, f.dims, &cfg)
                .map_err(|e| e.to_string())?;
            println!(
                "auto-tune: chose [{}] ({:.2}x on the sample, {:.2}x canonical, margin {:.3}x)",
                report.chosen.recipe,
                report.chosen_ratio,
                report.canonical_ratio,
                report.margin()
            );
            c
        } else {
            Codec::new(cfg).compress(&data).map_err(|e| e.to_string())?
        }
    };
    let dt = t0.elapsed();
    {
        let _span = recorder.wall_span("write-output");
        std::fs::write(output, &c.data).map_err(|e| format!("writing {output}: {e}"))?;
    }
    if let Some(path) = &f.profile_out {
        recorder.count("original_bytes", c.stats.original_bytes as u64);
        recorder.count("compressed_bytes", c.stats.compressed_bytes as u64);
        recorder.count("blocks", c.stats.n_blocks as u64);
        write_json(path, &recorder.snapshot().to_json())?;
        println!("wall-clock profile written to {path}");
    }
    println!(
        "{} -> {}: {} -> {} bytes (ratio {:.2}x) in {:.1} ms",
        input,
        output,
        c.stats.original_bytes,
        c.stats.compressed_bytes,
        c.ratio(),
        dt.as_secs_f64() * 1e3
    );
    println!(
        "eps {:.6e}, {} blocks ({} zero), max fixed length {} bits",
        c.stats.eps, c.stats.n_blocks, c.stats.zero_blocks, c.stats.max_fixed_length
    );
    if !c.stats.recipe.is_canonical() {
        println!("recipe:      {}", c.stats.recipe);
    }
    Ok(())
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let [input, output] = f.positional.as_slice() else {
        return Err("decompress needs <in.csz> <out.f32>".into());
    };
    let recorder = if f.profile_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let bytes = {
        let _span = recorder.wall_span("read-input");
        std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?
    };
    let restored = {
        let _span = recorder.wall_span("decompress");
        Codec::decompressor(Parallelism::Rayon)
            .decompress(&bytes)
            .map_err(|e| e.to_string())?
    };
    {
        let _span = recorder.wall_span("write-output");
        let mut out = Vec::with_capacity(restored.len() * 4);
        for v in &restored {
            out.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(Path::new(output.as_str()), &out)
            .map_err(|e| format!("writing {output}: {e}"))?;
    }
    if let Some(path) = &f.profile_out {
        recorder.count("compressed_bytes", bytes.len() as u64);
        recorder.count("restored_values", restored.len() as u64);
        write_json(path, &recorder.snapshot().to_json())?;
        println!("wall-clock profile written to {path}");
    }
    println!("{input} -> {output}: {} values restored", restored.len());
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let [input] = f.positional.as_slice() else {
        return Err("profile needs <in.f32>".into());
    };
    let mut data = read_f32(input)?;
    let total = data.len();
    if f.limit > 0 && data.len() > f.limit {
        data.truncate(f.limit);
        println!(
            "profiling the first {} of {total} values (raise with --limit N, 0 = all)",
            data.len()
        );
    }
    let strategy = flag_strategy(&f)?;
    let cfg = CereszConfig::new(f.bound).with_block_size(f.block);
    let profile = ceresz_profile(&data, &cfg, strategy, f.threads)?;
    print!("{}", profile.report.render_table());
    println!(
        "\n  ratio {:.2}x   simulated throughput {:.2} GB/s",
        profile.run.compressed.ratio(),
        profile.run.throughput_gbps()
    );

    let out = f.out.as_deref().unwrap_or("profile.json");
    let mut doc = profile.report.to_json();
    if let ceresz::telemetry::json::JsonValue::Obj(fields) = &mut doc {
        fields.push(("telemetry".to_owned(), profile.snapshot.to_json()));
    }
    write_json(out, &doc)?;
    let trace_out = f.trace_out.as_deref().unwrap_or("trace.json");
    write_json(trace_out, &profile.trace.to_json())?;
    println!("profile written to {out}, Perfetto trace to {trace_out}");
    Ok(())
}

/// Run [`profile_compression_with`] with CLI-friendly error mapping.
fn ceresz_profile(
    data: &[f32],
    cfg: &CereszConfig,
    strategy: MappingStrategy,
    threads: usize,
) -> Result<ceresz::wse::CompressionProfile, String> {
    let options = SimOptions::default().with_threads(threads.max(1));
    profile_compression_with(data, cfg, strategy, &options).map_err(|e| e.to_string())
}

/// The `--all-strategies` observation sweep: all three mappings on 64-row
/// meshes, the pipelined two genuinely 64×64 (the acceptance shape).
fn observe_sweep() -> Vec<MappingStrategy> {
    vec![
        MappingStrategy::RowParallel { rows: 64 },
        MappingStrategy::Pipeline {
            rows: 64,
            pipeline_length: 64,
        },
        MappingStrategy::MultiPipeline {
            rows: 64,
            pipeline_length: 8,
            pipelines_per_row: 8,
        },
    ]
}

/// Derive a per-strategy artifact path when one flag serves several runs:
/// `heat.json` + `pipeline rows=64 len=64` → `heat.pipeline-rows-64-len-64.json`.
fn suffixed(path: &str, strategy: MappingStrategy, many: bool) -> String {
    if !many {
        return path.to_owned();
    }
    let tag: String = strategy
        .to_string()
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '-' })
        .collect();
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{tag}.{ext}"),
        None => format!("{path}.{tag}"),
    }
}

fn cmd_observe(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let strategies = if f.all_strategies {
        observe_sweep()
    } else if f.strategy_explicit {
        vec![flag_strategy(&f)?]
    } else {
        // Default acceptance shape: the 64×64-mesh multi-pipeline.
        vec![MappingStrategy::MultiPipeline {
            rows: 64,
            pipeline_length: 8,
            pipelines_per_row: 8,
        }]
    };
    let cfg = CereszConfig::new(f.bound).with_block_size(f.block);
    let data = match f.positional.as_slice() {
        [] => {
            // Synthetic smooth signal: several blocks per row of the
            // largest mesh, enough to surface pipeline contention.
            let rows = strategies
                .iter()
                .map(|s| s.mesh_shape().0)
                .max()
                .unwrap_or(1);
            (0..f.block * rows * 8)
                .map(|i| (i as f32 * 0.017).sin() * 8.0 + (i as f32 * 0.0042).cos() * 3.0)
                .collect()
        }
        [input] => {
            let mut data = read_f32(input)?;
            let total = data.len();
            if f.limit > 0 && data.len() > f.limit {
                data.truncate(f.limit);
                println!(
                    "observing the first {} of {total} values (raise with --limit N, 0 = all)",
                    data.len()
                );
            }
            data
        }
        other => return Err(format!("observe takes at most one input file: {other:?}")),
    };
    let mut options = SimOptions::default().with_threads(f.threads.max(1));
    if f.window > 0 {
        options = options.with_flight_window(f.window);
    }
    let many = strategies.len() > 1;
    for (i, &strategy) in strategies.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let report = ceresz::wse::observe(&strategy, &data, &cfg, &options)
            .map_err(|e| format!("{strategy}: {e}"))?;
        print!("{}", report.render(f.top, 32, 96));
        // Static-bound cross-check: the analyzer's bounds over the same
        // mapping must dominate everything the flight recorder just saw.
        let manifest = ceresz::wse::mapping_manifest(&data, &cfg, strategy)
            .map_err(|e| format!("{strategy}: {e}"))?;
        let profile = ceresz::wse::analyze_mapping(&manifest);
        let soundness = ceresz::wse::check_soundness(
            &profile,
            &report.stats,
            &report.flight,
            &report.mem_peak_bytes,
        );
        println!(
            "\nstatic bounds ({} links, {} PEs checked): critical path >= {} cycles \
             vs observed {}, sram peak {} B, deadlock {}",
            soundness.links_checked,
            soundness.pes_checked,
            profile.critical_path,
            soundness.observed_makespan,
            profile.sram_watermark(),
            if profile.is_deadlock_free() {
                "proven free"
            } else {
                "CYCLE FOUND"
            }
        );
        if !soundness.is_sound() {
            for v in &soundness.violations {
                println!("  UNSOUND: {v}");
            }
            return Err(format!(
                "{}: {} static-bound soundness violation(s)",
                manifest.name,
                soundness.violations.len()
            ));
        }
        if let Some(path) = &f.json_out {
            let path = suffixed(path, strategy, many);
            write_json(&path, &report.to_json())?;
            println!("heatmap JSON written to {path}");
        }
        if let Some(path) = &f.csv_out {
            let path = suffixed(path, strategy, many);
            std::fs::write(&path, report.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
            println!("heatmap CSV written to {path}");
        }
    }
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    if !f.positional.is_empty() {
        return Err(format!(
            "fuzz takes no positional arguments: {:?}",
            f.positional
        ));
    }

    // Replay mode: one case rebuilt from its reported seed.
    if let Some(seed) = f.case_seed {
        let case = ceresz::conformance::Case::from_seed(seed, 0);
        println!(
            "replaying case seed {seed:#018x}: {} values ({:?}), bound {:?}, block {}",
            case.data.len(),
            case.class,
            case.bound,
            case.block_size
        );
        let outcome = ceresz::conformance::run_case(&case);
        for (oracle, message) in &outcome.violations {
            println!("  FAIL [{oracle}]: {message}");
        }
        return if outcome.violations.is_empty() {
            println!("  all oracles passed");
            Ok(())
        } else {
            Err(format!("{} oracle violation(s)", outcome.violations.len()))
        };
    }

    println!(
        "fuzzing {} cases from seed {} (shrink {})",
        f.cases,
        f.seed,
        if f.no_shrink { "off" } else { "on" }
    );
    let t0 = std::time::Instant::now();
    let report = ceresz::conformance::run_fuzz(&ceresz::conformance::FuzzConfig {
        seed: f.seed,
        cases: f.cases,
        shrink: !f.no_shrink,
    });
    print!("{report}");
    println!("done in {:.1} s", t0.elapsed().as_secs_f64());
    if report.all_passed() {
        Ok(())
    } else {
        Err(format!(
            "{} conformance violation(s); replay one with --case-seed <seed>",
            report.failures.len()
        ))
    }
}

/// Mapping strategy parsed from `--strategy`/`--rows`/`--len`/`--pipelines`.
fn flag_strategy(f: &Flags) -> Result<MappingStrategy, String> {
    match f.strategy.as_str() {
        "row-parallel" => Ok(MappingStrategy::RowParallel { rows: f.rows }),
        "pipeline" => Ok(MappingStrategy::Pipeline {
            rows: f.rows,
            pipeline_length: f.len,
        }),
        "multi-pipeline" => Ok(MappingStrategy::MultiPipeline {
            rows: f.rows,
            pipeline_length: f.len,
            pipelines_per_row: f.pipelines,
        }),
        other => Err(format!(
            "unknown strategy '{other}' (row-parallel | pipeline | multi-pipeline)"
        )),
    }
}

/// The EXPERIMENTS.md shape sweep: every strategy × mesh shape the
/// reproduction exercises (row counts from Fig. 7, pipeline lengths from
/// Fig. 13, multi-pipeline combinations from Figs. 10–13).
fn lint_sweep() -> Vec<MappingStrategy> {
    let mut s = Vec::new();
    for rows in [1usize, 2, 4, 8, 16, 32] {
        s.push(MappingStrategy::RowParallel { rows });
    }
    for rows in [1usize, 2] {
        for len in [1usize, 2, 3, 4, 8] {
            s.push(MappingStrategy::Pipeline {
                rows,
                pipeline_length: len,
            });
        }
    }
    for (len, p) in [
        (1usize, 1usize),
        (1, 2),
        (1, 4),
        (1, 8),
        (2, 2),
        (2, 3),
        (3, 2),
        (4, 2),
    ] {
        for rows in [1usize, 2] {
            s.push(MappingStrategy::MultiPipeline {
                rows,
                pipeline_length: len,
                pipelines_per_row: p,
            });
        }
    }
    s
}

/// One ranked diagnostic as a stable JSON object (field order fixed, absent
/// anchors encoded as `null`).
fn diagnostic_json(d: &ceresz::wse::verify::Diagnostic) -> ceresz::telemetry::json::JsonValue {
    use ceresz::telemetry::json::JsonValue as J;
    J::Obj(vec![
        ("severity".to_owned(), J::Str(d.severity.to_string())),
        ("check".to_owned(), J::Str(d.check.to_string())),
        (
            "pe".to_owned(),
            d.pe.map_or(J::Null, |pe| {
                J::Obj(vec![
                    ("row".to_owned(), J::Num(pe.row as f64)),
                    ("col".to_owned(), J::Num(pe.col as f64)),
                ])
            }),
        ),
        (
            "color".to_owned(),
            d.color.map_or(J::Null, |c| J::Num(f64::from(c.id()))),
        ),
        ("message".to_owned(), J::Str(d.message.clone())),
        (
            "hint".to_owned(),
            d.hint.as_ref().map_or(J::Null, |h| J::Str(h.clone())),
        ),
    ])
}

/// The per-mapping entry of the `lint --json` document.
fn lint_mapping_json(
    name: &str,
    strategy: MappingStrategy,
    diags: &[ceresz::wse::verify::Diagnostic],
    analysis: Option<&(
        ceresz::wse::verify::StaticProfile,
        ceresz::wse::SoundnessReport,
    )>,
) -> ceresz::telemetry::json::JsonValue {
    use ceresz::telemetry::json::JsonValue as J;
    let ne = diags
        .iter()
        .filter(|d| d.severity == ceresz::wse::verify::Severity::Error)
        .count();
    let mut fields = vec![
        ("name".to_owned(), J::Str(name.to_owned())),
        ("strategy".to_owned(), J::Str(strategy.to_string())),
        ("pes".to_owned(), J::Num(strategy.pes() as f64)),
        ("errors".to_owned(), J::Num(ne as f64)),
        ("warnings".to_owned(), J::Num((diags.len() - ne) as f64)),
        (
            "diagnostics".to_owned(),
            J::Arr(diags.iter().map(diagnostic_json).collect()),
        ),
    ];
    if let Some((profile, soundness)) = analysis {
        fields.push((
            "static".to_owned(),
            ceresz::wse::profile_json(profile, Some(soundness)),
        ));
    }
    J::Obj(fields)
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    if !f.positional.is_empty() {
        return Err(format!(
            "lint takes no positional arguments: {:?}",
            f.positional
        ));
    }
    let strategies = if f.strategy_explicit && !f.all_strategies {
        vec![flag_strategy(&f)?]
    } else {
        lint_sweep()
    };
    // Synthetic smooth signal: enough blocks that every row of the widest
    // shape owns several, exercising relay chains and padding.
    let data: Vec<f32> = (0..f.block * 128)
        .map(|i| (i as f32 * 0.013).sin() * 10.0 + (i as f32 * 0.0041).cos() * 3.0)
        .collect();
    let cfg = CereszConfig::new(f.bound).with_block_size(f.block);
    let options = SimOptions::default()
        .with_threads(f.threads.max(1))
        .with_flight_window(if f.window > 0 { f.window } else { 1024 });

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut unsound = 0usize;
    let want_doc = f.json || f.json_out.is_some();
    let mut mapping_docs = Vec::new();
    for strategy in &strategies {
        let manifest = ceresz::wse::mapping_manifest(&data, &cfg, *strategy)
            .map_err(|e| format!("building {strategy:?}: {e}"))?;
        let report = ceresz::wse::verify::verify(&manifest);
        let mut diags = report.diagnostics.clone();

        // `--analyze`: static bounds plus a flight-recorded run of the same
        // mapping on the same data, cross-checked for soundness.
        let mut analysis = None;
        if f.analyze {
            let profile = ceresz::wse::analyze_mapping(&manifest);
            diags.extend(profile.diagnostics.iter().cloned());
            let observed = ceresz::wse::observe(strategy, &data, &cfg, &options)
                .map_err(|e| format!("simulating {}: {e}", manifest.name))?;
            let soundness = ceresz::wse::check_soundness(
                &profile,
                &observed.stats,
                &observed.flight,
                &observed.mem_peak_bytes,
            );
            unsound += soundness.violations.len();
            analysis = Some((profile, soundness));
        }
        ceresz::wse::verify::rank(&mut diags);
        let ne = diags
            .iter()
            .filter(|d| d.severity == ceresz::wse::verify::Severity::Error)
            .count();
        let nw = diags.len() - ne;
        errors += ne;
        warnings += nw;

        if want_doc {
            mapping_docs.push(lint_mapping_json(
                &manifest.name,
                *strategy,
                &diags,
                analysis.as_ref(),
            ));
        }
        if f.json {
            continue;
        }
        if ne == 0 {
            println!(
                "ok   {} ({} PEs{})",
                manifest.name,
                strategy.pes(),
                if nw > 0 {
                    format!(", {nw} warning(s)")
                } else {
                    String::new()
                }
            );
            for d in diags
                .iter()
                .filter(|d| d.severity == ceresz::wse::verify::Severity::Warning)
            {
                println!("     {d}");
            }
        } else {
            println!("FAIL {} ({ne} error(s))", manifest.name);
            for d in &diags {
                println!("     {d}");
            }
        }
        if let Some((profile, soundness)) = &analysis {
            println!(
                "     static: critical path >= {} cycles (observed {}), max link load \
                 {} wavelets, sram peak {} B, deadlock {}",
                profile.critical_path,
                soundness.observed_makespan,
                profile.max_link_wavelets(),
                profile.sram_watermark(),
                if profile.is_deadlock_free() {
                    "proven free"
                } else {
                    "CYCLE FOUND"
                }
            );
            for v in &soundness.violations {
                println!("     UNSOUND: {v}");
            }
        }
    }

    let doc = ceresz::telemetry::json::JsonValue::Obj(vec![
        (
            "mappings".to_owned(),
            ceresz::telemetry::json::JsonValue::Arr(mapping_docs),
        ),
        (
            "errors".to_owned(),
            ceresz::telemetry::json::JsonValue::Num(errors as f64),
        ),
        (
            "warnings".to_owned(),
            ceresz::telemetry::json::JsonValue::Num(warnings as f64),
        ),
        (
            "soundness_violations".to_owned(),
            ceresz::telemetry::json::JsonValue::Num(unsound as f64),
        ),
    ]);
    if f.json {
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "linted {} mapping(s): {errors} error(s), {warnings} warning(s){}",
            strategies.len(),
            if f.analyze {
                format!(", {unsound} soundness violation(s)")
            } else {
                String::new()
            }
        );
    }
    if let Some(path) = &f.json_out {
        write_json(path, &doc)?;
        if !f.json {
            println!("lint JSON written to {path}");
        }
    }
    if errors > 0 {
        Err(format!("{errors} mapping verification error(s)"))
    } else if unsound > 0 {
        Err(format!(
            "{unsound} static-bound soundness violation(s) — the analyzer's bounds \
             failed to dominate the observed run"
        ))
    } else {
        Ok(())
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [input] = args else {
        return Err("info needs <in.csz>".into());
    };
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let header = StreamHeader::read(&bytes).map_err(|e| e.to_string())?;
    println!("stream:      {input}");
    println!(
        "version:     {}",
        if header.recipe.is_canonical() { 1 } else { 2 }
    );
    println!("recipe:      {}", header.recipe);
    println!("elements:    {}", header.count);
    println!("block size:  {}", header.block_size);
    println!("header width:{} byte(s)", header.header_width.bytes());
    println!("eps (abs):   {:.6e}", header.eps);
    println!("blocks:      {}", header.n_blocks());
    println!(
        "ratio:       {:.2}x",
        header.count as f64 * 4.0 / bytes.len() as f64
    );
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let [orig_path, csz_path] = args else {
        return Err("verify needs <orig.f32> <in.csz>".into());
    };
    let orig = read_f32(orig_path)?;
    let bytes = std::fs::read(csz_path).map_err(|e| format!("reading {csz_path}: {e}"))?;
    let header = StreamHeader::read(&bytes).map_err(|e| e.to_string())?;
    let restored = Codec::decompressor(Parallelism::Rayon)
        .decompress(&bytes)
        .map_err(|e| e.to_string())?;
    if restored.len() != orig.len() {
        return Err(format!(
            "length mismatch: original {} vs stream {}",
            orig.len(),
            restored.len()
        ));
    }
    let ok = verify_error_bound(&orig, &restored, header.eps);
    println!(
        "max error {:.6e} vs eps {:.6e} -> {}",
        max_abs_error(&orig, &restored),
        header.eps,
        if ok { "BOUND HELD" } else { "BOUND VIOLATED" }
    );
    println!("PSNR {:.2} dB", ceresz::quality::psnr(&orig, &restored));
    if ok {
        Ok(())
    } else {
        Err("error bound violated".into())
    }
}
