//! `ceresz` — command-line error-bounded lossy compression of raw `f32`
//! files (SDRBench layout: little-endian, no header).
//!
//! ```text
//! ceresz compress   <in.f32> <out.csz> [--rel 1e-3 | --abs 0.01] [--block 32]
//! ceresz decompress <in.csz> <out.f32>
//! ceresz info       <in.csz>
//! ceresz verify     <orig.f32> <in.csz>
//! ```

use std::path::Path;
use std::process::ExitCode;

use ceresz::core::{
    compress_parallel, decompress_bytes_parallel, max_abs_error, verify_error_bound,
    CereszConfig, ErrorBound,
};
use ceresz::core::stream::StreamHeader;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  ceresz compress   <in.f32> <out.csz> [--rel L | --abs E] [--block N]");
            eprintln!("  ceresz decompress <in.csz> <out.f32>");
            eprintln!("  ceresz info       <in.csz>");
            eprintln!("  ceresz verify     <orig.f32> <in.csz>");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".into()),
    }
}

fn read_f32(path: &str) -> Result<Vec<f32>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    if bytes.len() % 4 != 0 {
        return Err(format!("{path}: size {} is not a multiple of 4", bytes.len()));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn parse_flags(args: &[String]) -> Result<(Vec<&str>, ErrorBound, usize), String> {
    let mut positional = Vec::new();
    let mut bound = ErrorBound::Rel(1e-3);
    let mut block = 32usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rel" | "--abs" => {
                let v: f64 = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{} needs a value", args[i]))?
                    .parse()
                    .map_err(|e| format!("{}: {e}", args[i]))?;
                bound = if args[i] == "--rel" {
                    ErrorBound::Rel(v)
                } else {
                    ErrorBound::Abs(v)
                };
                i += 2;
            }
            "--block" => {
                block = args
                    .get(i + 1)
                    .ok_or("--block needs a value")?
                    .parse()
                    .map_err(|e| format!("--block: {e}"))?;
                i += 2;
            }
            other => {
                positional.push(other);
                i += 1;
            }
        }
    }
    Ok((positional, bound, block))
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let (pos, bound, block) = parse_flags(args)?;
    let [input, output] = pos.as_slice() else {
        return Err("compress needs <in.f32> <out.csz>".into());
    };
    let data = read_f32(input)?;
    let cfg = CereszConfig::new(bound).with_block_size(block);
    let t0 = std::time::Instant::now();
    let c = compress_parallel(&data, &cfg).map_err(|e| e.to_string())?;
    let dt = t0.elapsed();
    std::fs::write(output, &c.data).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "{} -> {}: {} -> {} bytes (ratio {:.2}x) in {:.1} ms",
        input,
        output,
        c.stats.original_bytes,
        c.stats.compressed_bytes,
        c.ratio(),
        dt.as_secs_f64() * 1e3
    );
    println!(
        "eps {:.6e}, {} blocks ({} zero), max fixed length {} bits",
        c.stats.eps, c.stats.n_blocks, c.stats.zero_blocks, c.stats.max_fixed_length
    );
    Ok(())
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("decompress needs <in.csz> <out.f32>".into());
    };
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let restored = decompress_bytes_parallel(&bytes).map_err(|e| e.to_string())?;
    let mut out = Vec::with_capacity(restored.len() * 4);
    for v in &restored {
        out.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(Path::new(output.as_str()), &out)
        .map_err(|e| format!("writing {output}: {e}"))?;
    println!("{input} -> {output}: {} values restored", restored.len());
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [input] = args else {
        return Err("info needs <in.csz>".into());
    };
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let header = StreamHeader::read(&bytes).map_err(|e| e.to_string())?;
    println!("stream:      {input}");
    println!("elements:    {}", header.count);
    println!("block size:  {}", header.block_size);
    println!("header width:{} byte(s)", header.header_width.bytes());
    println!("eps (abs):   {:.6e}", header.eps);
    println!("blocks:      {}", header.n_blocks());
    println!(
        "ratio:       {:.2}x",
        header.count as f64 * 4.0 / bytes.len() as f64
    );
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let [orig_path, csz_path] = args else {
        return Err("verify needs <orig.f32> <in.csz>".into());
    };
    let orig = read_f32(orig_path)?;
    let bytes = std::fs::read(csz_path).map_err(|e| format!("reading {csz_path}: {e}"))?;
    let header = StreamHeader::read(&bytes).map_err(|e| e.to_string())?;
    let restored = decompress_bytes_parallel(&bytes).map_err(|e| e.to_string())?;
    if restored.len() != orig.len() {
        return Err(format!(
            "length mismatch: original {} vs stream {}",
            orig.len(),
            restored.len()
        ));
    }
    let ok = verify_error_bound(&orig, &restored, header.eps);
    println!(
        "max error {:.6e} vs eps {:.6e} -> {}",
        max_abs_error(&orig, &restored),
        header.eps,
        if ok { "BOUND HELD" } else { "BOUND VIOLATED" }
    );
    println!("PSNR {:.2} dB", ceresz::quality::psnr(&orig, &restored));
    if ok {
        Ok(())
    } else {
        Err("error bound violated".into())
    }
}
