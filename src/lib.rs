//! # ceresz
//!
//! Facade crate of the CereSZ reproduction workspace: re-exports the public
//! surface of every member crate so examples and downstream users need a
//! single dependency.
//!
//! * [`core`] — the CereSZ compression algorithm and planning (Algorithm 1,
//!   Eqs. 2–4).
//! * [`wse`] — the three parallelization strategies running on the simulated
//!   wafer, plus the full-wafer analytic throughput engine.
//! * [`sim`] — the Cerebras-style dataflow simulator substrate.
//! * [`data`] — synthetic SDRBench-like datasets and raw `f32` I/O.
//! * [`quality`] — PSNR / SSIM / rate–distortion metrics.
//! * [`baselines`] — SZ3, SZp, cuSZ, cuSZp reimplementations and device
//!   throughput models.
//! * [`huffman`] — the canonical Huffman substrate.
//! * [`telemetry`] — profiling primitives (counters, histograms, spans) and
//!   the Perfetto / `profile.json` exporters behind `ceresz profile`.
//! * [`conformance`] — the seed-driven differential fuzzing harness behind
//!   `ceresz fuzz` (four oracles: differential, roundtrip, mutation,
//!   baselines).
//!
//! ## Quickstart
//!
//! ```
//! use ceresz::core::{compress, decompress, CereszConfig, ErrorBound};
//!
//! let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
//! let cfg = CereszConfig::new(ErrorBound::Rel(1e-3));
//! let compressed = compress(&data, &cfg).unwrap();
//! let restored = decompress(&compressed).unwrap();
//! assert!(ceresz::core::verify_error_bound(&data, &restored, compressed.stats.eps));
//! println!("ratio = {:.2}", compressed.ratio());
//! ```

#![forbid(unsafe_code)]
pub use baselines;
pub use ceresz_core as core;
pub use ceresz_wse as wse;
pub use conformance;
pub use datasets as data;
pub use huffman;
pub use metrics as quality;
pub use telemetry;
pub use wse_sim as sim;
